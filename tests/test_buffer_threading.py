"""Thread-safety and resize semantics of the buffer pool."""

from __future__ import annotations

import random
import threading

import pytest

from repro.storage.buffer import LRUBuffer
from repro.storage.paged_file import PagedFile
from repro.storage.policies import ClockBuffer, FIFOBuffer, LFUBuffer
from repro.storage.stats import IOStats


def loader_for(pages):
    def loader(page_id: int) -> bytes:
        return pages[page_id]
    return loader


class TestResize:
    def test_shrink_evicts_in_strict_lru_order(self):
        buffer = LRUBuffer(capacity=5)
        pages = {i: bytes([i]) * 4 for i in range(5)}
        load = loader_for(pages)
        for i in range(5):
            buffer.read(i, load)
        # Recency now 0 < 1 < 2 < 3 < 4; touch 0 and 1 to promote them.
        buffer.read(0, load)
        buffer.read(1, load)
        buffer.resize(2)
        assert len(buffer) == 2
        assert 0 in buffer and 1 in buffer  # the two most recent
        for evicted in (2, 3, 4):
            assert evicted not in buffer

    def test_shrink_keeps_io_stats_consistent(self):
        stats = IOStats()
        buffer = LRUBuffer(capacity=4, stats=stats)
        pages = {i: bytes([i]) * 4 for i in range(4)}
        load = loader_for(pages)
        for i in range(4):
            buffer.read(i, load)
        before = stats.snapshot()
        buffer.resize(1)  # eviction is not an I/O event
        assert stats.disk_reads == before.disk_reads
        assert stats.buffer_hits == before.buffer_hits
        # Re-reading an evicted page is a true disk read again.
        buffer.read(0, load)
        assert stats.disk_reads == before.disk_reads + 1

    def test_lfu_resize_evicts_least_frequent(self):
        buffer = LFUBuffer(capacity=3)
        pages = {i: bytes([i]) * 4 for i in range(3)}
        load = loader_for(pages)
        for i in range(3):
            buffer.read(i, load)
        for __ in range(5):
            buffer.read(0, load)
        for __ in range(3):
            buffer.read(2, load)
        buffer.resize(1)  # page 1 (freq 1) then page 2 (freq 4) go
        assert 0 in buffer
        assert len(buffer) == 1
        # Internal frequency bookkeeping followed the evictions.
        assert set(buffer._frequency) == {0}

    def test_clock_resize_uses_second_chance(self):
        buffer = ClockBuffer(capacity=3)
        pages = {i: bytes([i]) * 4 for i in range(3)}
        load = loader_for(pages)
        for i in range(3):
            buffer.read(i, load)
        buffer.read(0, load)  # reference page 0
        buffer.resize(2)  # hand passes 0 (referenced), evicts 1
        assert 0 in buffer
        assert 1 not in buffer
        assert 2 in buffer
        assert set(buffer._referenced) == {0, 2}

    def test_grow_is_a_noop_for_contents(self):
        buffer = LRUBuffer(capacity=2)
        pages = {i: bytes([i]) * 4 for i in range(2)}
        load = loader_for(pages)
        buffer.read(0, load)
        buffer.read(1, load)
        buffer.resize(10)
        assert len(buffer) == 2

    def test_negative_capacity_rejected(self):
        buffer = LRUBuffer(capacity=2)
        with pytest.raises(ValueError):
            buffer.resize(-1)


@pytest.mark.parametrize(
    "buffer_cls", [LRUBuffer, FIFOBuffer, LFUBuffer, ClockBuffer]
)
def test_concurrent_reads_stay_consistent(buffer_cls):
    """8 threads hammer read/put/invalidate/resize; the buffer never
    corrupts, never over-fills, and accounts every logical read."""
    page_count = 64
    pages = {i: i.to_bytes(4, "big") for i in range(page_count)}
    load = loader_for(pages)
    stats = IOStats()
    buffer = buffer_cls(capacity=16, stats=stats)
    reads_per_thread = 400
    thread_count = 8
    errors = []

    def hammer(seed: int) -> None:
        rng = random.Random(seed)
        try:
            for step in range(reads_per_thread):
                page_id = rng.randrange(page_count)
                data = buffer.read(page_id, load)
                if data != pages[page_id]:
                    raise AssertionError(
                        f"page {page_id} returned wrong bytes"
                    )
                if step % 97 == 0:
                    buffer.invalidate(rng.randrange(page_count))
                if step % 131 == 0:
                    buffer.resize(rng.choice((8, 12, 16)))
        except Exception as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(seed,))
        for seed in range(thread_count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    assert len(buffer) <= buffer.capacity
    # Every logical read was classified exactly once.
    total = thread_count * reads_per_thread
    assert stats.buffer_hits + stats.disk_reads == total


def test_paged_file_read_latency_sleeps_only_on_miss():
    import time

    file = PagedFile(buffer_capacity=4, read_latency=0.02)
    page_id = file.allocate()
    file.write_page(page_id, b"\x00" * file.page_size)
    file.buffer.clear()
    file.stats.reset()
    start = time.perf_counter()
    file.read_page(page_id)  # miss: pays the simulated seek
    miss_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    file.read_page(page_id)  # hit: free
    hit_elapsed = time.perf_counter() - start
    assert miss_elapsed >= 0.02
    assert hit_elapsed < 0.02
    assert file.stats.disk_reads == 1
    assert file.stats.buffer_hits == 1


def test_concurrent_misses_overlap_their_latency():
    """Simulated seeks release the GIL: 4 threads missing at once take
    far less than 4 serial seeks."""
    import time

    file = PagedFile(buffer_capacity=0, read_latency=0.05)
    page_ids = []
    for __ in range(4):
        page_id = file.allocate()
        file.write_page(page_id, b"\x00" * file.page_size)
        page_ids.append(page_id)

    start = time.perf_counter()
    threads = [
        threading.Thread(target=file.read_page, args=(page_id,))
        for page_id in page_ids
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert elapsed < 4 * 0.05  # overlapped, not serialised
