"""The scalar and vectorised expansion paths must agree *bitwise*.

``CPQOptions.use_vectorized`` promises that switching implementations
never changes a result: the scalar helpers in
:mod:`repro.geometry.metrics` mirror the NumPy kernels of
:mod:`repro.geometry.vectorized` operation for operation (same
accumulation order, same parenthesisation), so their outputs are equal
as bit patterns, not merely to a tolerance.  These tests pin that
contract at two levels:

* kernel level -- Hypothesis-generated rectangle/point batches in
  d = 2 and d = 3 under Euclidean, Manhattan and Chebyshev metrics,
  compared with ``==``.  For a *general* Minkowski ``p`` the base
  power operation itself differs between NumPy's array ``**`` and
  CPython's scalar ``pow`` by up to 1 ulp, so there the contract is
  ULP-level closeness, not bit equality;
* query level -- every algorithm on a SEQUOIA-like sample returns
  byte-identical ``CPQResult.pairs`` (distances, points, oids, i.e.
  tie-break order too) and identical work counters with the flag on
  and off.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CPQRequest, k_closest_pairs
from repro.core.api import CORE_ALGORITHMS as ALGORITHMS
from repro.datasets import overlapping_workspace, sequoia_like
from repro.datasets.workspace import UNIT_WORKSPACE
from repro.geometry.mbr import MBR
from repro.geometry.metrics import maxdist, mindist, minmaxdist
from repro.geometry.minkowski import (
    CHEBYSHEV,
    EUCLIDEAN,
    MANHATTAN,
    MinkowskiMetric,
)
from repro.geometry.vectorized import (
    KERNEL_STATS,
    pairwise_maxdist,
    pairwise_mindist,
    pairwise_minmaxdist,
    pairwise_point_distances,
)
from repro.rtree.bulk import bulk_load

coord = st.floats(
    min_value=-20, max_value=20, allow_nan=False, allow_infinity=False
)
metrics = st.sampled_from(
    [EUCLIDEAN, MANHATTAN, CHEBYSHEV, MinkowskiMetric(3.0)]
)
dimensions = st.sampled_from([2, 3])

#: p in {1, 2, inf} involves no ``x ** p``: bit-identical scalar and
#: vectorised results.  Other p go through pow, where NumPy and CPython
#: may differ in the last ulp.
EXACT_METRICS = (EUCLIDEAN, MANHATTAN, CHEBYSHEV)


def assert_matches(vectorized, scalar, metric):
    if metric in EXACT_METRICS:
        assert vectorized == scalar
    else:
        assert vectorized == pytest.approx(scalar, rel=1e-12, abs=1e-300)


@st.composite
def rect_batch(draw, dimension, max_rects=4):
    n = draw(st.integers(min_value=1, max_value=max_rects))
    los, his = [], []
    for __ in range(n):
        a = [draw(coord) for __ in range(dimension)]
        b = [draw(coord) for __ in range(dimension)]
        los.append([min(x, y) for x, y in zip(a, b)])
        his.append([max(x, y) for x, y in zip(a, b)])
    return np.array(los), np.array(his)


@st.composite
def two_rect_batches(draw):
    dimension = draw(dimensions)
    return draw(rect_batch(dimension)), draw(rect_batch(dimension))


@st.composite
def two_point_batches(draw):
    dimension = draw(dimensions)
    points = st.lists(
        st.tuples(*[coord] * dimension), min_size=1, max_size=5
    )
    return (
        np.array(draw(points), dtype=np.float64),
        np.array(draw(points), dtype=np.float64),
    )


def as_mbrs(lo, hi):
    return [MBR(tuple(l), tuple(h)) for l, h in zip(lo, hi)]


@pytest.mark.parametrize(
    "scalar_fn,vector_fn",
    [
        (mindist, pairwise_mindist),
        (maxdist, pairwise_maxdist),
        (minmaxdist, pairwise_minmaxdist),
    ],
    ids=["minmin", "maxmax", "minmax"],
)
@given(batches=two_rect_batches(), metric=metrics)
@settings(max_examples=150, deadline=None)
def test_rect_kernels_bitwise_equal(scalar_fn, vector_fn, batches, metric):
    (lo_a, hi_a), (lo_b, hi_b) = batches
    matrix = vector_fn(lo_a, hi_a, lo_b, hi_b, metric)
    for i, a in enumerate(as_mbrs(lo_a, hi_a)):
        for j, b in enumerate(as_mbrs(lo_b, hi_b)):
            assert_matches(matrix[i, j], scalar_fn(a, b, metric), metric)


@given(batches=two_point_batches(), metric=metrics)
@settings(max_examples=150, deadline=None)
def test_point_kernel_bitwise_equal(batches, metric):
    points_a, points_b = batches
    matrix = pairwise_point_distances(points_a, points_b, metric)
    for i, a in enumerate(points_a):
        for j, b in enumerate(points_b):
            assert_matches(
                matrix[i, j], metric.distance(tuple(a), tuple(b)), metric
            )


# ---------------------------------------------------------------------------
# End-to-end: whole queries are identical with the flag on and off.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def sequoia_trees():
    workspace_q = overlapping_workspace(UNIT_WORKSPACE, 0.5)
    pts_p = sequoia_like(800, UNIT_WORKSPACE, seed=7)
    pts_q = sequoia_like(800, workspace_q, seed=8)
    return bulk_load(pts_p), bulk_load(pts_q)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("k", [1, 10])
def test_query_parity_scalar_vs_vectorized(sequoia_trees, algorithm, k):
    tree_p, tree_q = sequoia_trees
    results = {}
    for use_vectorized in (True, False):
        request = CPQRequest(
            k=k, algorithm=algorithm, use_vectorized=use_vectorized
        )
        results[use_vectorized] = k_closest_pairs(
            tree_p, tree_q, request=request
        )
    fast, slow = results[True], results[False]
    # Byte-identical pairs: same distances (as bit patterns), same
    # points, same oids, same (tie-break) order.
    assert [
        (p.distance, p.p, p.q, p.p_oid, p.q_oid) for p in fast.pairs
    ] == [
        (p.distance, p.p, p.q, p.p_oid, p.q_oid) for p in slow.pairs
    ]
    # And the same work: identical pruning means identical traversal.
    assert fast.stats.node_pairs_visited == slow.stats.node_pairs_visited
    assert fast.stats.disk_accesses == slow.stats.disk_accesses
    assert (fast.stats.distance_computations
            == slow.stats.distance_computations)


def test_scalar_path_records_scalar_kernels(sequoia_trees):
    tree_p, tree_q = sequoia_trees
    KERNEL_STATS.reset()
    k_closest_pairs(
        tree_p, tree_q,
        request=CPQRequest(k=4, algorithm="heap", use_vectorized=False),
    )
    tallies = KERNEL_STATS.snapshot()
    assert tallies["points_scalar"]["pairs"] > 0
    assert tallies["minmin_scalar"]["pairs"] > 0
    assert "points" not in tallies
    KERNEL_STATS.reset()
    k_closest_pairs(
        tree_p, tree_q,
        request=CPQRequest(k=4, algorithm="heap", use_vectorized=True),
    )
    tallies = KERNEL_STATS.snapshot()
    assert tallies["points"]["pairs"] > 0
    assert tallies["minmin"]["pairs"] > 0
    assert "points_scalar" not in tallies
    KERNEL_STATS.reset()
