"""Coverage for node internals and miscellaneous edge cases."""

import numpy as np
import pytest

from repro.geometry.mbr import MBR
from repro.rtree.entries import InternalEntry, LeafEntry
from repro.rtree.node import Node
from repro.rtree.tree import RTree, RTreeConfig
from repro.storage.page import PageLayout
from repro.storage.paged_file import PagedFile
from repro.storage.store import MemoryPageStore


class TestNode:
    def test_empty_node_has_no_mbr(self):
        with pytest.raises(ValueError):
            Node(0, 0).mbr()

    def test_points_array_on_internal_rejected(self):
        node = Node(0, 1, [InternalEntry(MBR((0, 0), (1, 1)), 5)])
        with pytest.raises(ValueError):
            node.points_array()

    def test_leaf_arrays_are_points(self):
        node = Node(0, 0, [LeafEntry((1.0, 2.0), 0),
                           LeafEntry((3.0, 4.0), 1)])
        assert node.points_array().tolist() == [[1.0, 2.0], [3.0, 4.0]]
        assert np.array_equal(node.lo_array(), node.hi_array())

    def test_internal_arrays_are_bounds(self):
        node = Node(0, 1, [
            InternalEntry(MBR((0, 0), (1, 2)), 5),
            InternalEntry(MBR((3, 3), (4, 5)), 6),
        ])
        assert node.lo_array().tolist() == [[0, 0], [3, 3]]
        assert node.hi_array().tolist() == [[1, 2], [4, 5]]

    def test_mutation_invalidates_caches(self):
        node = Node(0, 0, [LeafEntry((0.0, 0.0), 0)])
        first = node.mbr()
        node.add(LeafEntry((5.0, 5.0), 1))
        assert node.mbr() != first
        removed = node.remove_at(1)
        assert removed.oid == 1
        assert node.mbr() == first

    def test_roundtrip_through_tuples(self):
        leaf = Node(7, 0, [LeafEntry((1.0, 2.0), 9)])
        again = Node.from_tuples(7, 0, leaf.to_tuples())
        assert again.entries == leaf.entries
        internal = Node(8, 2, [InternalEntry(MBR((0, 0), (1, 1)), 3)])
        again = Node.from_tuples(8, 2, internal.to_tuples())
        assert again.entries == internal.entries

    def test_repr_mentions_kind(self):
        assert "leaf" in repr(Node(0, 0))
        assert "internal" in repr(Node(0, 2))


class TestEntryTypes:
    def test_leaf_entry_equality_and_hash(self):
        a = LeafEntry((1.0, 2.0), 3)
        b = LeafEntry((1, 2), 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != LeafEntry((1.0, 2.0), 4)
        assert a != "something"

    def test_internal_entry_equality(self):
        box = MBR((0, 0), (1, 1))
        assert InternalEntry(box, 5) == InternalEntry(box, 5)
        assert InternalEntry(box, 5) != InternalEntry(box, 6)

    def test_leaf_entry_mbr_is_degenerate_and_cached(self):
        entry = LeafEntry((1.0, 2.0), 0)
        assert entry.mbr is entry.mbr
        assert entry.mbr.lo == entry.mbr.hi == (1.0, 2.0)


class TestConfigurationErrors:
    def test_paged_file_page_size_mismatch(self):
        store = MemoryPageStore(512)
        file = PagedFile(store)
        layout = PageLayout(page_size=1024)
        with pytest.raises(ValueError, match="pages"):
            RTree(RTreeConfig(layout=layout), file)

    def test_tree_repr(self):
        tree = RTree()
        assert "points=0" in repr(tree)

    def test_iterators_on_empty_tree(self):
        tree = RTree()
        assert list(tree.iter_leaf_entries()) == []
        assert list(tree.iter_nodes()) == []

    def test_insert_many(self):
        tree = RTree()
        tree.insert_many([(0.0, 0.0), (1.0, 1.0)])
        assert sorted(e.oid for e in tree.iter_leaf_entries()) == [0, 1]
        tree2 = RTree()
        tree2.insert_many([(0.0, 0.0)], oids=[42])
        assert next(iter(tree2.iter_leaf_entries())).oid == 42


class TestClosestPairOrdering:
    def test_sorted_by_distance_then_coordinates(self):
        from repro.core.result import ClosestPair

        pairs = [
            ClosestPair(2.0, (0, 0), (2, 0)),
            ClosestPair(1.0, (5, 5), (5, 6)),
            ClosestPair(1.0, (0, 0), (1, 0)),
        ]
        ordered = sorted(pairs)
        assert [p.distance for p in ordered] == [1.0, 1.0, 2.0]
        assert ordered[0].p == (0, 0)
