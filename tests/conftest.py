"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree, RTreeConfig
from repro.storage.page import PageLayout

# A small profile keeps hypothesis fast enough for the full suite
# while still exercising hundreds of generated cases overall.
settings.register_profile(
    "suite",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("suite")


def brute_force_pairs(points_p, points_q, k):
    """Ground truth: the k smallest distances between two point lists."""
    distances = sorted(
        math.dist(p, q) for p in points_p for q in points_q
    )
    return distances[:k]


def random_points(n, rng, xspan=(0.0, 1.0), yspan=(0.0, 1.0)):
    return [
        (rng.uniform(*xspan), rng.uniform(*yspan)) for __ in range(n)
    ]


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_layout():
    """A tiny page layout (M = 4) that forces deep trees quickly."""
    # 16-byte header + 4 x 48-byte entries
    return PageLayout(page_size=16 + 4 * 48)


@pytest.fixture
def small_tree(small_layout):
    return RTree(RTreeConfig(layout=small_layout))


@pytest.fixture(scope="module")
def medium_trees():
    """A pair of moderately sized bulk-loaded trees (module-scoped)."""
    rng_local = random.Random(42)
    points_p = [
        (rng_local.random(), rng_local.random()) for __ in range(800)
    ]
    points_q = [
        (rng_local.uniform(0.4, 1.4), rng_local.random())
        for __ in range(700)
    ]
    return (
        points_p,
        points_q,
        bulk_load(points_p),
        bulk_load(points_q),
    )
