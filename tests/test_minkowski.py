"""Unit and property tests for the Minkowski metric family."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.minkowski import (
    CHEBYSHEV,
    EUCLIDEAN,
    MANHATTAN,
    MinkowskiMetric,
)

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points_2d = st.tuples(coords, coords)
orders = st.one_of(
    st.just(1.0), st.just(2.0), st.just(math.inf),
    st.floats(min_value=1.0, max_value=10.0),
)


class TestConstruction:
    def test_euclidean_is_p2(self):
        assert EUCLIDEAN.p == 2.0

    def test_manhattan_is_p1(self):
        assert MANHATTAN.p == 1.0

    def test_chebyshev_is_inf(self):
        assert CHEBYSHEV.p == math.inf

    @pytest.mark.parametrize("p", [0.5, 0.0, -1.0])
    def test_order_below_one_rejected(self, p):
        with pytest.raises(ValueError):
            MinkowskiMetric(p)

    def test_equality_and_hash(self):
        assert MinkowskiMetric(2.0) == EUCLIDEAN
        assert hash(MinkowskiMetric(2.0)) == hash(EUCLIDEAN)
        assert MinkowskiMetric(3.0) != EUCLIDEAN


class TestKnownValues:
    def test_euclidean_345(self):
        assert EUCLIDEAN.distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_manhattan(self):
        assert MANHATTAN.distance((0, 0), (3, 4)) == pytest.approx(7.0)

    def test_chebyshev(self):
        assert CHEBYSHEV.distance((0, 0), (3, 4)) == pytest.approx(4.0)

    def test_p3(self):
        metric = MinkowskiMetric(3.0)
        expected = (3 ** 3 + 4 ** 3) ** (1 / 3)
        assert metric.distance((0, 0), (3, 4)) == pytest.approx(expected)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            EUCLIDEAN.distance((0, 0), (1, 2, 3))


class TestMetricAxioms:
    @given(points_2d, orders)
    def test_identity(self, a, p):
        assert MinkowskiMetric(p).distance(a, a) == 0.0

    @given(points_2d, points_2d, orders)
    def test_symmetry(self, a, b, p):
        metric = MinkowskiMetric(p)
        assert metric.distance(a, b) == pytest.approx(
            metric.distance(b, a)
        )

    @given(points_2d, points_2d, points_2d, orders)
    def test_triangle_inequality(self, a, b, c, p):
        metric = MinkowskiMetric(p)
        direct = metric.distance(a, c)
        detour = metric.distance(a, b) + metric.distance(b, c)
        assert direct <= detour * (1 + 1e-9) + 1e-9

    @given(points_2d, points_2d, orders)
    def test_non_negative(self, a, b, p):
        assert MinkowskiMetric(p).distance(a, b) >= 0.0

    @given(points_2d, points_2d)
    def test_order_monotonicity(self, a, b):
        # L_p distance is non-increasing in p.
        d1 = MANHATTAN.distance(a, b)
        d2 = EUCLIDEAN.distance(a, b)
        dinf = CHEBYSHEV.distance(a, b)
        assert d1 >= d2 - 1e-9 * max(1.0, d1)
        assert d2 >= dinf - 1e-9 * max(1.0, d2)


class TestCombineFinish:
    @given(st.lists(st.floats(min_value=0, max_value=1e3), max_size=5), orders)
    def test_combine_finish_consistent_with_distance(self, deltas, p):
        metric = MinkowskiMetric(p)
        origin = tuple(0.0 for __ in deltas)
        point = tuple(deltas)
        via_parts = metric.finish(metric.combine(deltas))
        assert via_parts == pytest.approx(metric.distance(origin, point))

    def test_combine_empty(self):
        assert CHEBYSHEV.combine([]) == 0.0
        assert EUCLIDEAN.combine([]) == 0.0
