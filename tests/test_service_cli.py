"""CLI coverage for the service subcommands (``batch`` and ``serve``)."""

from __future__ import annotations

import io
import json
import math

import numpy as np
import pytest

from repro.cli import main
from repro.datasets.io import save_points


@pytest.fixture(scope="module")
def point_files(tmp_path_factory):
    rng = np.random.default_rng(17)
    directory = tmp_path_factory.mktemp("cli-service")
    left = directory / "left.npy"
    right = directory / "right.npy"
    save_points(str(left), rng.random((120, 2)))
    save_points(str(right), rng.random((110, 2)))
    return str(left), str(right)


def write_jsonl(path, objects):
    with open(path, "w") as handle:
        for obj in objects:
            handle.write(json.dumps(obj) + "\n")


def read_jsonl(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


def test_batch_mixed_requests(point_files, tmp_path, capsys):
    left, right = point_files
    requests_path = tmp_path / "requests.jsonl"
    out_path = tmp_path / "responses.jsonl"
    stats_path = tmp_path / "stats.json"
    write_jsonl(requests_path, [
        {"op": "cpq", "k": 3},
        {"op": "cpq", "k": 3},  # identical: second wave may hit cache
        {"op": "cpq", "k": 2, "algorithm": "heap"},
        {"op": "knn", "point": [0.5, 0.5], "k": 4},
        {"op": "range", "lo": [0.2, 0.2], "hi": [0.6, 0.6]},
    ])

    code = main([
        "batch", left, right, str(requests_path),
        "--workers", "2",
        "--out", str(out_path),
        "--stats-json", str(stats_path),
    ])
    captured = capsys.readouterr()
    assert code == 0

    responses = read_jsonl(out_path)
    assert len(responses) == 5
    assert all(r["status"] == "ok" for r in responses)

    cpq = responses[0]
    assert cpq["kind"] == "cpq"
    assert len(cpq["pairs"]) == 3
    distances = [p["distance"] for p in cpq["pairs"]]
    assert distances == sorted(distances)
    # Responses stay aligned with request order.
    assert responses[1]["pairs"] == cpq["pairs"]
    assert responses[2]["algorithm"] == "heap"
    assert len(responses[2]["pairs"]) == 2

    knn = responses[3]
    assert knn["kind"] == "knn"
    assert len(knn["neighbors"]) == 4
    nn_distances = [n["distance"] for n in knn["neighbors"]]
    assert nn_distances == sorted(nn_distances)

    rng_resp = responses[4]
    assert rng_resp["kind"] == "range"
    for entry in rng_resp["points"]:
        x, y = entry["point"]
        assert 0.2 <= x <= 0.6 and 0.2 <= y <= 0.6

    assert "# batch: 5 requests" in captured.err
    assert "# serve-stats" in captured.err
    stats = json.loads(stats_path.read_text())
    assert stats["queries"]["submitted"] == 5
    assert stats["queries"]["by_status"]["ok"] == 5
    assert stats["planner"]  # auto requests went through the planner


def test_batch_zero_deadline_reports_structured_status(
    point_files, tmp_path, capsys
):
    left, right = point_files
    requests_path = tmp_path / "requests.jsonl"
    write_jsonl(requests_path, [
        {"op": "cpq", "k": 1, "deadline_ms": 0},
    ])
    code = main(["batch", left, right, str(requests_path),
                 "--workers", "1"])
    captured = capsys.readouterr()
    assert code == 0
    (response,) = [json.loads(line)
                   for line in captured.out.splitlines() if line.strip()]
    assert response["status"] == "deadline_exceeded"
    assert "pairs" not in response
    assert "1 deadline_exceeded" in captured.err


def test_serve_reads_stdin_jsonl(point_files, capsys, monkeypatch):
    left, right = point_files
    lines = "\n".join([
        json.dumps({"op": "cpq", "k": 1}),
        "",  # blank lines are skipped
        "not json at all",
        json.dumps({"op": "nope"}),
        json.dumps({"op": "knn", "point": [0.1, 0.9], "k": 2}),
    ]) + "\n"
    monkeypatch.setattr("sys.stdin", io.StringIO(lines))

    code = main(["serve", left, right, "--workers", "1"])
    captured = capsys.readouterr()
    assert code == 0

    responses = [json.loads(line)
                 for line in captured.out.splitlines() if line.strip()]
    assert len(responses) == 4  # blank line dropped
    assert responses[0]["status"] == "ok"
    assert responses[0]["kind"] == "cpq"
    assert responses[1]["status"] == "error"  # bad JSON
    assert "bad request" in responses[1]["error"]
    assert responses[2]["status"] == "error"  # unknown op
    assert responses[3]["status"] == "ok"
    assert len(responses[3]["neighbors"]) == 2
    assert "# serve-stats" in captured.err


def test_batch_distances_match_direct_query(point_files, tmp_path, capsys):
    """The service path returns the same closest pair as `repro-cpq query`
    would: cross-check against a brute-force scan of the inputs."""
    left, right = point_files
    points_p = np.load(left)
    points_q = np.load(right)
    best = min(
        math.dist(p, q) for p in points_p for q in points_q
    )

    requests_path = tmp_path / "requests.jsonl"
    write_jsonl(requests_path, [{"op": "cpq", "k": 1}])
    code = main(["batch", left, right, str(requests_path)])
    captured = capsys.readouterr()
    assert code == 0
    (response,) = [json.loads(line)
                   for line in captured.out.splitlines() if line.strip()]
    assert response["pairs"][0]["distance"] == pytest.approx(best)
