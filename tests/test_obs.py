"""Tests for the tracing/profiling layer (:mod:`repro.obs`).

Covers the ISSUE 2 acceptance points: span nesting/ordering, IOStats
delta correctness against raw (observer-counted) page reads, the no-op
tracer changing nothing about an untraced query, JSONL round-tripping
through the provided loader, and the ``explain`` CLI golden output.
"""

from __future__ import annotations

import io
import json
import random
import re

import numpy as np
import pytest

from repro import bulk_load, k_closest_pairs
from repro.core.api import CPQRequest
from repro.cli import main
from repro.datasets.io import save_points
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    load_trace_jsonl,
    render_trace,
    write_trace_jsonl,
)
from repro.service import CPQRequest as ServiceRequest
from repro.service import QueryService


@pytest.fixture(scope="module")
def trees():
    rng = random.Random(0xCAFE)
    tree_p = bulk_load([(rng.random(), rng.random()) for __ in range(600)])
    tree_q = bulk_load([(rng.random(), rng.random()) for __ in range(550)])
    return tree_p, tree_q


# ---------------------------------------------------------------------------
# Span mechanics
# ---------------------------------------------------------------------------

class TestSpanNesting:
    def test_nesting_and_ordering(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("first") as first:
                with tracer.span("inner"):
                    tracer.add("ticks", 2)
            with tracer.span("second"):
                pass
            assert tracer.current() is root
        assert tracer.current() is None
        (trace,) = tracer.traces()
        assert trace is root
        assert [s.name for s in trace.children] == ["first", "second"]
        assert [s.name for s in trace.walk()] == [
            "root", "first", "inner", "second",
        ]
        inner = trace.find("inner")
        assert inner.parent_id == first.span_id
        assert inner.attrs == {"ticks": 2}

    def test_durations_and_offsets_monotone(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        (trace,) = tracer.traces()
        a, b = trace.children
        assert trace.duration_ms >= a.duration_ms
        assert b.offset_ms >= a.offset_ms >= 0.0

    def test_counters_accumulate_and_annotate_overwrites(self):
        span = Span("s")
        span.add("n", 3)
        span.add("n", 4)
        span.annotate(label="x")
        span.annotate(label="y")
        assert span.attrs == {"n": 7, "label": "y"}

    def test_total_and_leaves(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            root.add("io", 1)
            with tracer.span("child") as child:
                child.add("io", 2)
        (trace,) = tracer.traces()
        assert trace.total("io") == 3
        assert [s.name for s in trace.leaves()] == ["child"]

    def test_max_traces_bound(self):
        tracer = Tracer(max_traces=2)
        for i in range(5):
            with tracer.span(f"t{i}"):
                pass
        assert [t.name for t in tracer.traces()] == ["t3", "t4"]

    def test_threads_do_not_share_span_stacks(self):
        import threading

        tracer = Tracer()
        seen = {}

        def work(name):
            with tracer.span(name):
                seen[name] = tracer.current().name

        with tracer.span("main"):
            thread = threading.Thread(target=work, args=("worker",))
            thread.start()
            thread.join()
            assert tracer.current().name == "main"
        # The worker's span was a root of its own, not a child of main.
        assert seen["worker"] == "worker"
        names = sorted(t.name for t in tracer.traces())
        assert names == ["main", "worker"]


# ---------------------------------------------------------------------------
# Traced queries: I/O attribution
# ---------------------------------------------------------------------------

class TestTracedQuery:
    @pytest.mark.parametrize("algorithm", ["exh", "sim", "std", "heap"])
    def test_io_leaf_deltas_match_query_stats(self, trees, algorithm):
        tree_p, tree_q = trees
        tracer = Tracer()
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=3, algorithm=algorithm, buffer_pages=32),
            tracer=tracer,
        )
        (trace,) = tracer.pop_traces()
        leaf_reads = sum(
            span.attrs.get("disk_reads", 0) for span in trace.leaves()
        )
        leaf_hits = sum(
            span.attrs.get("buffer_hits", 0) for span in trace.leaves()
        )
        assert leaf_reads == result.stats.disk_accesses
        assert leaf_hits == result.stats.buffer_hits

    def test_observer_counts_vs_iostats_delta(self, trees):
        """The buffer observer's raw per-read counts agree with the
        IOStats delta-snapshots, minus exactly the two root reads done
        during query setup (before the traversal collectors start)."""
        tree_p, tree_q = trees
        tracer = Tracer()
        k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=2, algorithm="heap", buffer_pages=16),
            tracer=tracer,
        )
        (trace,) = tracer.pop_traces()
        for label in ("io.p", "io.q"):
            span = trace.find(label)
            assert span is not None
            assert span.attrs["observed_reads"] == span.attrs["reads"] - 1
            assert span.attrs["distinct_pages"] <= span.attrs["reads"]

    def test_traverse_counters_present(self, trees):
        tree_p, tree_q = trees
        tracer = Tracer()
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=2, algorithm="heap"),
            tracer=tracer,
        )
        (trace,) = tracer.pop_traces()
        traverse = trace.find("traverse")
        assert traverse.attrs["algorithm"] == "HEAP"
        assert (traverse.attrs["node_pairs_visited"]
                == result.stats.node_pairs_visited)
        assert traverse.attrs["pairs_pruned_minmin"] >= 0
        heap_span = trace.find("heap")
        assert heap_span.attrs["inserts"] == result.stats.queue_inserts
        assert heap_span.attrs["max_size"] == result.stats.max_queue_size
        assert heap_span.attrs["pops"] <= heap_span.attrs["inserts"] + 1

    def test_std_annotates_sort_and_ties(self, trees):
        tree_p, tree_q = trees
        tracer = Tracer()
        k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=2, algorithm="std"),
            tracer=tracer,
        )
        (trace,) = tracer.pop_traces()
        traverse = trace.find("traverse")
        assert "TieBreak" in traverse.attrs["tie_break"]
        assert traverse.attrs["sorts"] >= 1


# ---------------------------------------------------------------------------
# The no-op tracer changes nothing
# ---------------------------------------------------------------------------

class TestNoopTracer:
    def test_default_is_null_tracer(self, trees):
        from repro.core.engine import CPQContext

        tree_p, tree_q = trees
        ctx = CPQContext(tree_p, tree_q, k=1)
        assert ctx.tracer is NULL_TRACER
        assert not ctx.tracer.enabled

    def test_untraced_query_leaves_no_observer(self):
        rng = random.Random(5)
        tree_p = bulk_load([(rng.random(), rng.random())
                            for __ in range(100)])
        tree_q = bulk_load([(rng.random(), rng.random())
                            for __ in range(100)])
        k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=1, algorithm="heap"),
        )
        assert tree_p.file.buffer.on_read is None
        assert tree_q.file.buffer.on_read is None

    def test_identical_results_and_stats_with_and_without_tracer(
        self, trees
    ):
        tree_p, tree_q = trees
        plain = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=5, algorithm="std", buffer_pages=32),
        )
        traced = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=5, algorithm="std", buffer_pages=32),
            tracer=Tracer(),
        )
        assert plain.pairs == traced.pairs
        for field in ("disk_accesses", "buffer_hits",
                      "distance_computations", "node_pairs_visited",
                      "max_queue_size", "queue_inserts"):
            assert (getattr(plain.stats, field)
                    == getattr(traced.stats, field)), field

    def test_null_tracer_api_is_inert(self):
        tracer = NullTracer()
        with tracer.span("anything") as span:
            span.add("x", 1)
            span.annotate(y=2)
            tracer.add("z")
            tracer.annotate(w=3)
        assert span.attrs == {}
        assert tracer.traces() == []
        assert tracer.pop_traces() == []
        assert tracer.current() is None


# ---------------------------------------------------------------------------
# JSONL export round-trip
# ---------------------------------------------------------------------------

class TestJsonlRoundTrip:
    def build_trace(self):
        tracer = Tracer()
        with tracer.span("request", kind="cpq", pair="default") as root:
            with tracer.span("plan") as plan:
                plan.annotate(algorithm="heap", estimated_accesses=12.5)
            with tracer.span("traverse", algorithm="HEAP", k=3):
                tracer.add("node_pairs_visited", 7)
                with tracer.span("io.p") as io_span:
                    io_span.annotate(disk_reads=4, buffer_hits=2, reads=6)
        del root
        return tracer.pop_traces()

    def test_round_trip_preserves_structure_and_attrs(self, tmp_path):
        traces = self.build_trace()
        path = str(tmp_path / "trace.jsonl")
        lines = write_trace_jsonl(path, traces)
        assert lines == 4
        loaded = load_trace_jsonl(path)
        assert len(loaded) == len(traces) == 1
        original, restored = traces[0], loaded[0]
        assert ([s.name for s in original.walk()]
                == [s.name for s in restored.walk()])
        assert ([s.attrs for s in original.walk()]
                == [s.attrs for s in restored.walk()])
        assert ([s.parent_id for s in original.walk()]
                == [s.parent_id for s in restored.walk()])
        for old, new in zip(original.walk(), restored.walk()):
            assert new.duration_ms == pytest.approx(
                old.duration_ms, abs=1e-3
            )

    def test_lines_are_plain_json_objects(self):
        traces = self.build_trace()
        sink = io.StringIO()
        write_trace_jsonl(sink, traces)
        sink.seek(0)
        records = [json.loads(line) for line in sink if line.strip()]
        assert all(r["trace"] == records[0]["span"] for r in records)
        assert records[0]["parent"] is None
        assert {r["name"] for r in records} == {
            "request", "plan", "traverse", "io.p",
        }

    def test_loader_rejects_orphan_spans(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text(json.dumps({
            "trace": 1, "span": 2, "parent": 99, "name": "orphan",
            "offset_ms": 0, "duration_ms": 0, "attrs": {},
        }) + "\n")
        with pytest.raises(ValueError, match="unknown parent"):
            load_trace_jsonl(str(path))


# ---------------------------------------------------------------------------
# Service integration
# ---------------------------------------------------------------------------

class TestServiceTracing:
    def test_request_trace_and_metrics_rollup(self, trees):
        tree_p, tree_q = trees
        tracer = Tracer()
        with QueryService(workers=1, tracer=tracer) as service:
            service.register_pair("default", tree_p, tree_q)
            response = service.execute(ServiceRequest(pair="default", k=2))
            assert response.ok
            cached = service.execute(ServiceRequest(pair="default", k=2))
            assert cached.cached
            snapshot = service.snapshot()
        first, second = tracer.pop_traces()
        assert [s.name for s in first.walk()] == [
            "request", "plan", "traverse", "heap", "io.p", "io.q",
        ]
        assert first.attrs["status"] == "ok"
        # Cache hits skip planning and traversal entirely.
        assert [s.name for s in second.walk()] == ["request"]
        assert second.attrs["cached"] is True
        rollup = snapshot["spans"]
        assert rollup["request"]["count"] == 2
        assert rollup["traverse"]["count"] == 1
        assert rollup["plan"]["count"] == 1

    def test_untraced_service_snapshot_has_empty_rollup(self, trees):
        tree_p, tree_q = trees
        with QueryService(workers=1) as service:
            service.register_pair("default", tree_p, tree_q)
            assert service.execute(ServiceRequest(pair="default", k=1)).ok
            snapshot = service.snapshot()
        assert snapshot["spans"] == {}


# ---------------------------------------------------------------------------
# CLI `explain`
# ---------------------------------------------------------------------------

GOLDEN_EXPLAIN = """\
request  kind=cpq k=N algorithm=HEAP pairs=N
|-- plan  algorithm=heap reason=R estimated_accesses=N \
estimated_distance=N buffer_pages=N heights="[3, 3]" k=N workers=N \
estimated_speedup=N
`-- traverse  algorithm=HEAP k=N tie_break=TieBreak(T1) \
height_strategy=fix-at-root candidates_generated=N \
pairs_pruned_minmin=N node_pairs_visited=N distance_computations=N
    |-- heap  inserts=N pops=N max_size=N leftover=N
    |-- io.p  disk_reads=N buffer_hits=N reads=N observed_reads=N \
observed_disk_reads=N distinct_pages=N
    `-- io.q  disk_reads=N buffer_hits=N reads=N observed_reads=N \
observed_disk_reads=N distinct_pages=N"""


def _normalise(tree_text: str) -> str:
    text = re.sub(r'reason="[^"]*"', "reason=R", tree_text)
    text = re.sub(r"=-?\d+(\.\d+)?(e-?\d+)?", "=N", text)
    return text


class TestExplainCli:
    @pytest.fixture(scope="class")
    def point_files(self, tmp_path_factory):
        rng = np.random.default_rng(23)
        directory = tmp_path_factory.mktemp("explain")
        left = directory / "left.npy"
        right = directory / "right.npy"
        save_points(str(left), rng.random((400, 2)))
        save_points(str(right), rng.random((380, 2)))
        return str(left), str(right)

    def run_explain(self, capsys, argv):
        code = main(argv)
        captured = capsys.readouterr()
        assert code == 0
        return captured.out

    def test_golden_span_tree(self, point_files, capsys):
        left, right = point_files
        out = self.run_explain(capsys, [
            "explain", left, right, "--k", "3", "--buffer", "16",
            "--no-times",
        ])
        tree_text = out.split("\n\n", 1)[1].rsplit("\n#", 1)[0]
        assert _normalise(tree_text) == GOLDEN_EXPLAIN

    def test_leaf_reads_sum_to_reported_disk_accesses(
        self, point_files, capsys
    ):
        left, right = point_files
        out = self.run_explain(capsys, [
            "explain", left, right, "--k", "2", "--algorithm", "std",
            "--buffer", "8", "--no-times",
        ])
        reported = int(
            re.search(r"# STD: (\d+) disk accesses", out).group(1)
        )
        leaf_reads = [
            int(m) for m in re.findall(r"io\.[pq].*?disk_reads=(\d+)", out)
        ]
        assert len(leaf_reads) == 2
        assert sum(leaf_reads) == reported

    def test_trace_file_round_trips_through_loader(
        self, point_files, capsys, tmp_path
    ):
        left, right = point_files
        trace_path = str(tmp_path / "explain.jsonl")
        self.run_explain(capsys, [
            "explain", left, right, "--k", "2", "--trace", trace_path,
        ])
        (trace,) = load_trace_jsonl(trace_path)
        assert trace.name == "request"
        names = [s.name for s in trace.walk()]
        assert "traverse" in names and "io.p" in names
        # Rendering the reloaded trace works too.
        assert "traverse" in render_trace(trace)
