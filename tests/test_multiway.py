"""Tests for multi-way closest tuples (the future-work extension)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.multiway import (
    brute_force_tuples,
    multiway_closest_tuples,
)
from repro.geometry.minkowski import MANHATTAN
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree, RTreeConfig
from repro.storage.page import PageLayout

coord = st.floats(min_value=0, max_value=10, allow_nan=False)
small_sets = st.lists(st.tuples(coord, coord), min_size=1, max_size=8)


class TestCorrectness:
    @pytest.mark.parametrize("graph", ["chain", "clique"])
    @given(small_sets, small_sets, small_sets, st.integers(1, 4))
    @settings(max_examples=15)
    def test_three_way_matches_brute_force(
        self, graph, pts_a, pts_b, pts_c, k
    ):
        sets = [pts_a, pts_b, pts_c]
        k = min(k, len(pts_a) * len(pts_b) * len(pts_c))
        trees = [bulk_load(points) for points in sets]
        result = multiway_closest_tuples(trees, k=k, graph=graph)
        expected = brute_force_tuples(sets, k, graph)
        assert result.distances() == pytest.approx(expected, abs=1e-9)

    def test_two_way_chain_equals_pairwise_cpq(self):
        from repro.core import CPQRequest, k_closest_pairs

        rng = random.Random(2)
        pts_p = [(rng.random(), rng.random()) for __ in range(120)]
        pts_q = [(rng.uniform(0.4, 1.4), rng.random()) for __ in range(110)]
        tree_p = bulk_load(pts_p)
        tree_q = bulk_load(pts_q)
        multi = multiway_closest_tuples([tree_p, tree_q], k=8)
        pairwise = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=8, algorithm="heap"),
        )
        assert multi.distances() == pytest.approx(
            pairwise.distances(), abs=1e-9
        )

    def test_deep_trees_four_way(self):
        rng = random.Random(3)
        config = RTreeConfig(layout=PageLayout(page_size=16 + 4 * 48))
        sets = [
            [(rng.random() + shift, rng.random()) for __ in range(60)]
            for shift in (0.0, 0.3, 0.6, 0.9)
        ]
        trees = [bulk_load(points, config=config) for points in sets]
        result = multiway_closest_tuples(trees, k=3, graph="chain")
        expected = brute_force_tuples(sets, 3, "chain")
        assert result.distances() == pytest.approx(expected, abs=1e-9)

    def test_different_heights(self):
        rng = random.Random(4)
        config = RTreeConfig(layout=PageLayout(page_size=16 + 4 * 48))
        small = [(rng.random(), rng.random()) for __ in range(6)]
        large = [(rng.random(), rng.random()) for __ in range(400)]
        mid = [(rng.random(), rng.random()) for __ in range(60)]
        sets = [small, large, mid]
        trees = [bulk_load(points, config=config) for points in sets]
        heights = {tree.height for tree in trees}
        assert len(heights) > 1
        result = multiway_closest_tuples(trees, k=2, graph="clique")
        expected = brute_force_tuples(sets, 2, "clique")
        assert result.distances() == pytest.approx(expected, abs=1e-9)

    def test_other_metric(self):
        rng = random.Random(5)
        sets = [
            [(rng.random(), rng.random()) for __ in range(25)]
            for __ in range(3)
        ]
        trees = [bulk_load(points) for points in sets]
        result = multiway_closest_tuples(
            trees, k=2, graph="chain", metric=MANHATTAN
        )
        expected = brute_force_tuples(sets, 2, "chain", MANHATTAN)
        assert result.distances() == pytest.approx(expected, abs=1e-9)


class TestResultShape:
    def test_tuples_carry_points_and_oids(self):
        sets = [[(0.0, 0.0)], [(1.0, 0.0)], [(2.0, 0.0)]]
        trees = [bulk_load(points) for points in sets]
        result = multiway_closest_tuples(trees, k=1)
        assert len(result.tuples) == 1
        top = result.tuples[0]
        assert top.points == ((0.0, 0.0), (1.0, 0.0), (2.0, 0.0))
        assert top.oids == (0, 0, 0)
        assert top.distance == pytest.approx(2.0)

    def test_clique_counts_all_edges(self):
        sets = [[(0.0, 0.0)], [(1.0, 0.0)], [(2.0, 0.0)]]
        trees = [bulk_load(points) for points in sets]
        result = multiway_closest_tuples(trees, k=1, graph="clique")
        # chain edges (1 + 1) plus the closing edge (2).
        assert result.tuples[0].distance == pytest.approx(4.0)

    def test_stats_populated(self):
        rng = random.Random(7)
        sets = [
            [(rng.random(), rng.random()) for __ in range(300)]
            for __ in range(3)
        ]
        trees = [bulk_load(points) for points in sets]
        result = multiway_closest_tuples(trees, k=4)
        assert result.stats.disk_accesses > 0
        assert result.stats.node_pairs_visited > 0
        assert result.stats.max_queue_size > 0

    def test_k_exceeding_tuple_count(self):
        sets = [[(0.0, 0.0), (1.0, 1.0)], [(0.5, 0.5)]]
        trees = [bulk_load(points) for points in sets]
        result = multiway_closest_tuples(trees, k=99)
        assert len(result.tuples) == 2


class TestValidation:
    def test_needs_two_trees(self):
        with pytest.raises(ValueError, match="at least two"):
            multiway_closest_tuples([bulk_load([(0.0, 0.0)])])

    def test_unknown_graph(self):
        trees = [bulk_load([(0.0, 0.0)]), bulk_load([(1.0, 1.0)])]
        with pytest.raises(ValueError, match="graph"):
            multiway_closest_tuples(trees, graph="star")

    def test_bad_k(self):
        trees = [bulk_load([(0.0, 0.0)]), bulk_load([(1.0, 1.0)])]
        with pytest.raises(ValueError, match="k must be"):
            multiway_closest_tuples(trees, k=0)

    def test_dimension_mismatch(self):
        t2 = bulk_load([(0.0, 0.0)])
        t3 = RTree(RTreeConfig(layout=PageLayout(dimension=3)))
        t3.insert((0.0, 0.0, 0.0), 0)
        with pytest.raises(ValueError, match="dimension"):
            multiway_closest_tuples([t2, t3])

    def test_empty_tree_gives_empty_result(self):
        trees = [bulk_load([(0.0, 0.0)]), RTree()]
        assert multiway_closest_tuples(trees).tuples == []
