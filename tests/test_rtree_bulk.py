"""STR bulk-loading tests."""

import random

import pytest

from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTreeConfig
from repro.rtree.validate import validate
from repro.storage.page import PageLayout


class TestBulkLoad:
    @pytest.mark.parametrize(
        "n", [0, 1, 2, 13, 14, 15, 21, 22, 100, 441, 1000, 5000]
    )
    def test_invariants_across_sizes(self, n):
        rng = random.Random(n)
        points = [(rng.random(), rng.random()) for __ in range(n)]
        tree = bulk_load(points)
        summary = validate(tree)
        assert summary.entries == n
        assert len(tree) == n

    def test_contents_preserved_with_oids(self):
        rng = random.Random(2)
        points = [(rng.random(), rng.random()) for __ in range(300)]
        oids = [i * 7 for i in range(300)]
        tree = bulk_load(points, oids=oids)
        stored = sorted((e.point, e.oid) for e in tree.iter_leaf_entries())
        expected = sorted(
            ((float(x), float(y)), oid)
            for (x, y), oid in zip(points, oids)
        )
        assert stored == expected

    def test_default_oids_are_indices(self):
        tree = bulk_load([(0.0, 0.0), (1.0, 1.0)])
        oids = sorted(e.oid for e in tree.iter_leaf_entries())
        assert oids == [0, 1]

    def test_fill_factor_controls_leaf_count(self):
        rng = random.Random(4)
        points = [(rng.random(), rng.random()) for __ in range(2000)]
        dense = bulk_load(points, fill=1.0)
        sparse = bulk_load(points, fill=0.7)
        validate(dense)
        validate(sparse)
        assert dense.node_count() <= sparse.node_count()

    def test_bad_fill_rejected(self):
        with pytest.raises(ValueError):
            bulk_load([(0.0, 0.0)], fill=0.0)
        with pytest.raises(ValueError):
            bulk_load([(0.0, 0.0)], fill=1.5)

    def test_small_layout(self):
        layout = PageLayout(page_size=16 + 4 * 48)  # M = 4
        rng = random.Random(6)
        points = [(rng.random(), rng.random()) for __ in range(200)]
        tree = bulk_load(points, config=RTreeConfig(layout=layout))
        summary = validate(tree)
        assert summary.entries == 200
        assert tree.height >= 4  # tiny fanout forces a deep tree

    def test_identical_points(self):
        tree = bulk_load([(0.5, 0.5)] * 100)
        validate(tree)

    def test_bulk_tree_supports_further_inserts(self):
        rng = random.Random(8)
        points = [(rng.random(), rng.random()) for __ in range(500)]
        tree = bulk_load(points)
        for i in range(50):
            tree.insert((rng.random(), rng.random()), 1000 + i)
        summary = validate(tree)
        assert summary.entries == 550

    def test_bulk_tree_supports_deletes(self):
        rng = random.Random(12)
        points = [(rng.random(), rng.random()) for __ in range(300)]
        tree = bulk_load(points)
        for oid in range(0, 300, 2):
            assert tree.delete(points[oid], oid)
        summary = validate(tree)
        assert summary.entries == 150
