"""WAL checkpointing: truncation, sidecar ordering, recovery interplay.

The checkpoint contract is "durable elsewhere first": flush the page
store, atomically rewrite the ``.meta.json`` sidecar at the committed
snapshot, *then* empty the log.  These tests pin the consequences --
a checkpoint erases a torn tail along with everything else, recovery
after a checkpoint replays only the batches appended since, a double
checkpoint is a harmless no-op, and the background
:class:`~repro.storage.wal.WALCheckpointer` fires exactly when the
log crosses its size threshold.  Crash recovery *without* checkpoints
lives in ``tests/test_recovery.py``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree
from repro.storage.faults import tear_file_tail
from repro.storage.paged_file import PagedFile
from repro.storage.store import FilePageStore
from repro.storage.wal import WALCheckpointer, WriteAheadLog, recover_tree

PAGE = 1024


def make_points(n, seed=0):
    import random

    rng = random.Random(seed)
    return [(round(rng.random(), 6), round(rng.random(), 6))
            for __ in range(n)]


@pytest.fixture()
def live_tree(tmp_path):
    """A file-backed live tree with an attached no-sync WAL."""
    pages = str(tmp_path / "live.pages")
    tree = bulk_load(make_points(120, seed=3),
                     file=PagedFile(FilePageStore(pages, PAGE)))
    wal = WriteAheadLog(pages + ".wal", sync_mode="none")
    tree.enable_live_mutation(wal)
    meta = pages + ".meta.json"
    with open(meta, "w") as handle:
        json.dump(tree.metadata(), handle)
    yield tree, wal, pages, meta
    try:
        wal.close()
    except (OSError, ValueError):
        pass
    tree.file.store.close()


def insert_batches(tree, batches, batch_size=16, seed=11):
    points = make_points(batches * batch_size, seed=seed)
    oid = len(tree)
    for b in range(batches):
        with tree.batch():
            for i, point in enumerate(points[b * batch_size:
                                             (b + 1) * batch_size]):
                tree.insert(point, oid + b * batch_size + i)
    return points


class TestCheckpoint:
    def test_checkpoint_truncates_and_counts(self, live_tree):
        tree, wal, pages, meta = live_tree
        insert_batches(tree, 3)
        assert wal.size() > 0
        assert tree.checkpoint_wal(meta) is True
        assert wal.size() == 0
        assert list(wal.replay()) == []
        assert wal.stats.checkpoints == 1
        # The sidecar was rewritten at the committed snapshot, so a
        # cold reopen sees every checkpointed batch without the log.
        with open(meta) as handle:
            metadata = json.load(handle)
        assert metadata["count"] == len(tree)
        assert metadata["generation"] == tree.committed().generation

    def test_checkpoint_after_torn_tail_truncates(self, live_tree):
        """A torn tail is erased with the rest of the log."""
        tree, wal, pages, meta = live_tree
        insert_batches(tree, 3)
        torn = tear_file_tail(wal.path, seed=7, max_bytes=64)
        assert torn > 0
        assert tree.checkpoint_wal(meta) is True
        assert os.path.getsize(wal.path) == 0
        # The log is clean again: the next batch appends from offset
        # zero and replays alone, no torn bytes in front of it.
        insert_batches(tree, 1, seed=29)
        records = list(wal.replay())
        assert records, "post-checkpoint batch must be in the log"
        tree.file.store.close()
        wal.close()
        recovered, result = recover_tree(pages, wal.path)
        assert result.batches_applied == 1
        assert len(recovered) == len(tree)
        recovered.file.store.close()

    def test_recovery_replays_only_post_checkpoint_batches(
            self, live_tree):
        tree, wal, pages, meta = live_tree
        insert_batches(tree, 2, seed=11)
        assert tree.checkpoint_wal(meta) is True
        insert_batches(tree, 3, seed=13)
        expected = sorted(
            (e.point, e.oid) for e in tree.iter_leaf_entries()
        )
        total = len(tree)
        tree.file.store.close()
        wal.close()
        # Crash here: the checkpoint flushed batches 1-2 into the page
        # file, so replay applies exactly the three batches appended
        # since -- not the whole history.
        recovered, result = recover_tree(pages, wal.path)
        assert result.batches_applied == 3
        assert len(recovered) == total
        assert sorted(
            (e.point, e.oid) for e in recovered.iter_leaf_entries()
        ) == expected
        recovered.file.store.close()

    def test_double_checkpoint_is_idempotent(self, live_tree):
        tree, wal, pages, meta = live_tree
        insert_batches(tree, 2)
        assert tree.checkpoint_wal(meta) is True
        with open(meta) as handle:
            first = json.load(handle)
        assert tree.checkpoint_wal(meta) is True
        with open(meta) as handle:
            second = json.load(handle)
        assert second == first
        assert wal.size() == 0
        assert wal.stats.checkpoints == 2

    def test_checkpoint_without_wal_is_a_noop(self, tmp_path):
        tree = bulk_load(make_points(40),
                         file=PagedFile(FilePageStore(
                             str(tmp_path / "t.pages"), PAGE)))
        assert tree.checkpoint_wal() is False
        tree.file.store.close()


class TestWALCheckpointer:
    def test_threshold_gates_maybe_checkpoint(self, live_tree):
        tree, wal, pages, meta = live_tree
        checkpointer = WALCheckpointer(
            wal, lambda: tree.checkpoint_wal(meta),
            threshold_bytes=1 << 30,
        )
        insert_batches(tree, 2)
        assert checkpointer.maybe_checkpoint() is False
        assert wal.stats.checkpoints == 0
        checkpointer.threshold_bytes = 1
        assert checkpointer.maybe_checkpoint() is True
        assert checkpointer.checkpoints_triggered == 1
        assert wal.size() == 0

    def test_background_thread_fires_past_threshold(self, live_tree):
        tree, wal, pages, meta = live_tree
        with WALCheckpointer(wal, lambda: tree.checkpoint_wal(meta),
                             threshold_bytes=PAGE,
                             interval_s=0.01) as checkpointer:
            insert_batches(tree, 4)
            deadline = time.monotonic() + 5.0
            while (checkpointer.checkpoints_triggered == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
        assert checkpointer.checkpoints_triggered >= 1
        assert wal.stats.checkpoints >= 1

    def test_rejects_nonpositive_threshold(self, live_tree):
        tree, wal, pages, meta = live_tree
        with pytest.raises(ValueError, match="threshold_bytes"):
            WALCheckpointer(wal, lambda: None, threshold_bytes=0)
