"""Tests for the LRU buffer pool and the paged file facade."""

import pytest

from repro.storage.buffer import LRUBuffer
from repro.storage.paged_file import PagedFile
from repro.storage.stats import IOStats, QueryStats


def loader_factory(log):
    def loader(page_id):
        log.append(page_id)
        return bytes([page_id % 256]) * 8

    return loader


class TestLRUBuffer:
    def test_miss_then_hit(self):
        log = []
        buffer = LRUBuffer(capacity=2)
        loader = loader_factory(log)
        buffer.read(1, loader)
        buffer.read(1, loader)
        assert log == [1]
        assert buffer.stats.disk_reads == 1
        assert buffer.stats.buffer_hits == 1

    def test_zero_capacity_never_caches(self):
        log = []
        buffer = LRUBuffer(capacity=0)
        loader = loader_factory(log)
        for __ in range(3):
            buffer.read(5, loader)
        assert log == [5, 5, 5]
        assert buffer.stats.disk_reads == 3
        assert buffer.stats.buffer_hits == 0
        assert len(buffer) == 0

    def test_lru_eviction_order(self):
        log = []
        buffer = LRUBuffer(capacity=2)
        loader = loader_factory(log)
        buffer.read(1, loader)
        buffer.read(2, loader)
        buffer.read(1, loader)  # touch 1: now 2 is LRU
        buffer.read(3, loader)  # evicts 2
        assert 2 not in buffer
        assert 1 in buffer
        buffer.read(2, loader)  # miss again
        assert log == [1, 2, 3, 2]

    def test_put_installs_without_read(self):
        buffer = LRUBuffer(capacity=2)
        buffer.put(9, b"hello")
        got = buffer.read(9, lambda pid: pytest.fail("should not load"))
        assert got == b"hello"
        assert buffer.stats.buffer_hits == 1

    def test_invalidate(self):
        log = []
        buffer = LRUBuffer(capacity=2)
        loader = loader_factory(log)
        buffer.read(1, loader)
        buffer.invalidate(1)
        buffer.read(1, loader)
        assert log == [1, 1]

    def test_resize_shrinks_lru_first(self):
        log = []
        buffer = LRUBuffer(capacity=3)
        loader = loader_factory(log)
        for pid in (1, 2, 3):
            buffer.read(pid, loader)
        buffer.resize(1)
        assert len(buffer) == 1
        assert 3 in buffer  # most recently used survives

    def test_clear(self):
        buffer = LRUBuffer(capacity=2)
        buffer.put(1, b"x")
        buffer.clear()
        assert len(buffer) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUBuffer(capacity=-1)
        with pytest.raises(ValueError):
            LRUBuffer(capacity=1).resize(-2)


class TestIOStats:
    def test_reads_property(self):
        stats = IOStats(buffer_hits=3, disk_reads=2)
        assert stats.reads == 5
        assert stats.disk_accesses == 2

    def test_reset(self):
        stats = IOStats(1, 2, 3)
        stats.reset()
        assert (stats.buffer_hits, stats.disk_reads, stats.disk_writes) == (
            0, 0, 0,
        )

    def test_snapshot_is_independent(self):
        stats = IOStats(1, 2, 3)
        snap = stats.snapshot()
        stats.disk_reads = 99
        assert snap.disk_reads == 2

    def test_add(self):
        total = IOStats()
        total.add(IOStats(1, 2, 3))
        total.add(IOStats(10, 20, 30))
        assert (total.buffer_hits, total.disk_reads, total.disk_writes) == (
            11, 22, 33,
        )

    def test_query_stats_merge(self):
        qs = QueryStats()
        qs.merge_io(IOStats(buffer_hits=5, disk_reads=7))
        qs.merge_io(IOStats(buffer_hits=1, disk_reads=2))
        assert qs.disk_accesses == 9
        assert qs.buffer_hits == 6


class TestPagedFile:
    def test_write_then_read_counts(self):
        file = PagedFile(buffer_capacity=0, page_size=64)
        pid = file.allocate()
        file.write_page(pid, b"\x01" * 64)
        assert file.stats.disk_writes == 1
        file.read_page(pid)
        file.read_page(pid)
        assert file.stats.disk_reads == 2  # zero buffer: every read hits disk

    def test_buffered_reads(self):
        file = PagedFile(buffer_capacity=4, page_size=64)
        pid = file.allocate()
        file.write_page(pid, b"\x01" * 64)
        file.read_page(pid)
        file.read_page(pid)
        # write_page installed the page, so both reads are hits
        assert file.stats.disk_reads == 0
        assert file.stats.buffer_hits == 2

    def test_reset_for_query_clears_counters_and_buffer(self):
        file = PagedFile(buffer_capacity=4, page_size=64)
        pid = file.allocate()
        file.write_page(pid, b"\x01" * 64)
        file.reset_for_query()
        assert file.stats.disk_writes == 0
        file.read_page(pid)
        assert file.stats.disk_reads == 1  # buffer was cold again

    def test_free_page_invalidates_buffer(self):
        file = PagedFile(buffer_capacity=4, page_size=64)
        pid = file.allocate()
        file.write_page(pid, b"\x01" * 64)
        file.free_page(pid)
        pid2 = file.allocate()
        assert pid2 == pid  # reused
        with pytest.raises(KeyError):
            file.read_page(999)

    def test_set_buffer_capacity(self):
        file = PagedFile(buffer_capacity=0, page_size=64)
        pid = file.allocate()
        file.write_page(pid, b"\x02" * 64)
        file.set_buffer_capacity(2)
        file.read_page(pid)
        file.read_page(pid)
        assert file.stats.buffer_hits == 1
