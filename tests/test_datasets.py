"""Dataset generator tests: determinism, placement, clustering, I/O."""

import numpy as np
import pytest

from repro.datasets import (
    SEQUOIA_CARDINALITY,
    UNIT_WORKSPACE,
    Workspace,
    load_points,
    overlapping_workspace,
    save_points,
    sequoia_like,
    uniform_points,
)
from repro.datasets.workspace import (
    points_overlap_portion,
    workspace_pair,
)


class TestWorkspace:
    def test_properties(self):
        ws = Workspace(0, 0, 2, 4)
        assert ws.width == 2
        assert ws.height == 4
        assert ws.area == 8

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            Workspace(1, 0, 0, 1)

    def test_place_maps_unit_square(self):
        ws = Workspace(10, 20, 12, 24)
        placed = ws.place(np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.5]]))
        assert placed[0].tolist() == [10, 20]
        assert placed[1].tolist() == [12, 24]
        assert placed[2].tolist() == [11, 22]

    def test_place_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            UNIT_WORKSPACE.place(np.zeros((3, 3)))

    @pytest.mark.parametrize("portion", [0.0, 0.03, 0.25, 0.5, 1.0])
    def test_overlapping_workspace_exact_portion(self, portion):
        base, shifted = workspace_pair(portion)
        assert base.overlap_portion(shifted) == pytest.approx(portion)
        assert shifted.area == pytest.approx(base.area)

    def test_zero_overlap_leaves_a_gap(self):
        shifted = overlapping_workspace(UNIT_WORKSPACE, 0.0)
        assert shifted.xmin > UNIT_WORKSPACE.xmax

    def test_invalid_portion(self):
        with pytest.raises(ValueError):
            overlapping_workspace(UNIT_WORKSPACE, 1.5)

    def test_points_overlap_portion(self):
        pts = np.array([[0.5, 0.5], [5.0, 5.0]])
        assert points_overlap_portion(pts, UNIT_WORKSPACE) == 0.5
        assert points_overlap_portion(np.empty((0, 2)), UNIT_WORKSPACE) == 0.0


class TestUniform:
    def test_cardinality_and_bounds(self):
        pts = uniform_points(1000, seed=1)
        assert pts.shape == (1000, 2)
        assert pts.min() >= 0.0
        assert pts.max() <= 1.0

    def test_deterministic(self):
        assert np.array_equal(
            uniform_points(100, seed=7), uniform_points(100, seed=7)
        )

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            uniform_points(100, seed=1), uniform_points(100, seed=2)
        )

    def test_workspace_placement(self):
        ws = Workspace(5, 5, 6, 6)
        pts = uniform_points(500, workspace=ws, seed=3)
        assert pts[:, 0].min() >= 5.0
        assert pts[:, 0].max() <= 6.0

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            uniform_points(-1)


class TestSequoiaLike:
    def test_default_cardinality(self):
        pts = sequoia_like()
        assert pts.shape == (SEQUOIA_CARDINALITY, 2)

    def test_deterministic(self):
        assert np.array_equal(
            sequoia_like(2000, seed=5), sequoia_like(2000, seed=5)
        )

    def test_stays_in_workspace(self):
        pts = sequoia_like(5000)
        assert pts.min() >= 0.0
        assert pts.max() <= 1.0

    def test_clustered_compared_to_uniform(self):
        # The variance of per-cell counts of a clustered set greatly
        # exceeds a uniform set's (the property Section 4.3.2 relies
        # on: clustered data gives mostly-disjoint node rectangles).
        n = 20_000
        clustered = sequoia_like(n)
        uniform = uniform_points(n, seed=9)

        def cell_count_variance(pts, grid=20):
            cells = (
                np.floor(pts[:, 0] * grid).clip(0, grid - 1) * grid
                + np.floor(pts[:, 1] * grid).clip(0, grid - 1)
            ).astype(int)
            counts = np.bincount(cells, minlength=grid * grid)
            return counts.var()

        assert cell_count_variance(clustered) > (
            10 * cell_count_variance(uniform)
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sequoia_like(0)
        with pytest.raises(ValueError):
            sequoia_like(10, clusters=0)
        with pytest.raises(ValueError):
            sequoia_like(10, background_fraction=1.0)


class TestIO:
    @pytest.mark.parametrize("ext", ["npy", "csv"])
    def test_roundtrip(self, tmp_path, ext):
        pts = uniform_points(50, seed=11)
        path = str(tmp_path / f"points.{ext}")
        save_points(path, pts)
        loaded = load_points(path)
        assert np.allclose(loaded, pts)

    def test_unknown_extension_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_points(str(tmp_path / "points.xyz"), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            load_points(str(tmp_path / "points.xyz"))

    def test_bad_shape_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_points(str(tmp_path / "p.npy"), np.zeros(5))
