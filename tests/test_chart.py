"""Tests for the text chart renderer."""

import pytest

from repro.experiments.chart import series_chart
from repro.experiments.report import Table


@pytest.fixture
def table():
    t = Table("Demo", columns=("overlap", "k", "alg", "cost"))
    t.add(0, 1, "EXH", 200)
    t.add(0, 1, "HEAP", 10)
    t.add(0, 10, "EXH", 400)
    t.add(0, 10, "HEAP", 20)
    t.add(100, 1, "EXH", 5000)
    t.add(100, 1, "HEAP", 4000)
    return t


class TestSeriesChart:
    def test_contains_groups_series_and_values(self, table):
        chart = series_chart(table, x="k", series="alg", value="cost",
                             overlap=0)
        assert "k = 1" in chart
        assert "k = 10" in chart
        assert "EXH" in chart and "HEAP" in chart
        assert "200" in chart and "20" in chart
        assert "5,000" not in chart  # filtered out

    def test_bigger_value_longer_bar(self, table):
        chart = series_chart(table, x="k", series="alg", value="cost",
                             overlap=0, log=False)
        lines = {line.split()[0]: line for line in chart.splitlines()
                 if line.strip().startswith(("EXH", "HEAP"))}
        assert lines["EXH"].count("#") > lines["HEAP"].count("#")

    def test_log_scale_compresses(self, table):
        linear = series_chart(table, x="k", series="alg", value="cost",
                              log=False)
        logarithmic = series_chart(table, x="k", series="alg",
                                   value="cost", log=True)
        def bars(chart, name):
            return max(
                line.count("#") for line in chart.splitlines()
                if line.strip().startswith(name)
            )
        # HEAP's bar is relatively longer under log scaling
        assert bars(logarithmic, "HEAP") >= bars(linear, "HEAP")

    def test_no_matching_rows(self, table):
        with pytest.raises(ValueError, match="no rows"):
            series_chart(table, x="k", series="alg", value="cost",
                         overlap=42)

    def test_custom_title(self, table):
        chart = series_chart(table, x="k", series="alg", value="cost",
                             title="My Chart")
        assert chart.splitlines()[0] == "My Chart"

    def test_zero_values_get_no_bar(self):
        t = Table("Z", columns=("k", "alg", "cost"))
        t.add(1, "A", 0)
        t.add(1, "B", 10)
        chart = series_chart(t, x="k", series="alg", value="cost")
        a_line = [l for l in chart.splitlines() if l.strip().startswith("A")][0]
        assert "#" not in a_line
