"""End-to-end tests of the command-line interface."""

import json
import os

import pytest

from repro.cli import main


def run_cli(*argv):
    return main(list(argv))


class TestGenerate:
    def test_uniform_npy(self, tmp_path, capsys):
        out = str(tmp_path / "pts.npy")
        assert run_cli(
            "generate", "--kind", "uniform", "--n", "100", "--out", out
        ) == 0
        assert os.path.exists(out)
        assert "100 uniform points" in capsys.readouterr().out

    def test_sequoia_csv(self, tmp_path, capsys):
        out = str(tmp_path / "pts.csv")
        assert run_cli(
            "generate", "--kind", "sequoia", "--n", "50", "--out", out
        ) == 0
        assert "50 sequoia points" in capsys.readouterr().out

    def test_overlap_and_grid(self, tmp_path):
        from repro.datasets import load_points

        out = str(tmp_path / "pts.npy")
        run_cli(
            "generate", "--n", "200", "--overlap", "0.0",
            "--grid", "64", "--out", out,
        )
        points = load_points(out)
        # 0% overlap shifts the workspace fully to the right of [0,1]
        assert points[:, 0].min() > 1.0


class TestBuildInfoQuery:
    @pytest.fixture
    def built(self, tmp_path):
        points_path = str(tmp_path / "p.npy")
        tree_path = str(tmp_path / "p.pages")
        run_cli("generate", "--n", "500", "--seed", "3",
                "--out", points_path)
        run_cli("build", points_path, "--tree", tree_path)
        return points_path, tree_path

    def test_build_writes_pages_and_meta(self, built, capsys):
        __, tree_path = built
        assert os.path.exists(tree_path)
        with open(tree_path + ".meta.json") as handle:
            meta = json.load(handle)
        assert meta["count"] == 500

    def test_info(self, built, capsys):
        __, tree_path = built
        assert run_cli("info", "--tree", tree_path) == 0
        out = capsys.readouterr().out
        assert "points:   500" in out
        assert "M=21" in out

    def test_query_on_points_files(self, tmp_path, capsys):
        left = str(tmp_path / "a.npy")
        right = str(tmp_path / "b.npy")
        run_cli("generate", "--n", "300", "--seed", "1", "--out", left)
        run_cli("generate", "--n", "300", "--seed", "2", "--out", right)
        assert run_cli(
            "query", left, right, "--k", "5", "--algorithm", "std"
        ) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 6  # 5 pairs + stats line
        assert "# STD:" in out

    def test_query_on_built_tree(self, built, tmp_path, capsys):
        points_path, tree_path = built
        other = str(tmp_path / "other.npy")
        run_cli("generate", "--n", "200", "--seed", "9", "--out", other)
        assert run_cli(
            "query", tree_path, other, "--k", "3", "--buffer", "32"
        ) == 0
        assert "# HEAP:" in capsys.readouterr().out

    def test_query_results_match_library(self, tmp_path, capsys):
        from repro.core import CPQRequest, k_closest_pairs
        from repro.datasets import load_points
        from repro.rtree.bulk import bulk_load

        left = str(tmp_path / "a.npy")
        right = str(tmp_path / "b.npy")
        run_cli("generate", "--n", "150", "--seed", "4", "--out", left)
        run_cli("generate", "--n", "150", "--seed", "5", "--out", right)
        run_cli("query", left, right, "--k", "1")
        out = capsys.readouterr().out
        expected = k_closest_pairs(
            bulk_load(load_points(left)),
            bulk_load(load_points(right)),
            request=CPQRequest(k=1),
        )
        assert f"{expected.pairs[0].distance:.9f}" in out


class TestSubstrateCommands:
    @pytest.fixture
    def points_file(self, tmp_path):
        path = str(tmp_path / "pts.npy")
        run_cli("generate", "--n", "400", "--seed", "6", "--out", path)
        return path

    def test_knn(self, points_file, capsys):
        assert run_cli(
            "knn", points_file, "--x", "0.5", "--y", "0.5", "--k", "3"
        ) == 0
        out = capsys.readouterr().out
        assert out.count("oid=") == 3
        assert "disk accesses" in out

    def test_range(self, points_file, capsys):
        assert run_cli(
            "range", points_file, "--xmin", "0", "--ymin", "0",
            "--xmax", "1", "--ymax", "1",
        ) == 0
        out = capsys.readouterr().out
        assert "# 400 points" in out

    def test_join(self, points_file, tmp_path, capsys):
        other = str(tmp_path / "other.npy")
        run_cli("generate", "--n", "400", "--seed", "7", "--out", other)
        assert run_cli(
            "join", points_file, other, "--epsilon", "0.01",
            "--limit", "5",
        ) == 0
        out = capsys.readouterr().out
        assert "pairs within 0.01" in out


class TestFigure:
    def test_quick_figure_with_csv(self, tmp_path, capsys):
        csv_path = str(tmp_path / "fig.csv")
        assert run_cli(
            "figure", "fig04", "--quick", "--csv", csv_path
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert os.path.exists(csv_path)

    def test_unknown_figure(self):
        with pytest.raises(ValueError):
            run_cli("figure", "fig99", "--quick")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            run_cli()

    def test_unknown_algorithm_rejected_by_parser(self, tmp_path):
        with pytest.raises(SystemExit):
            run_cli("query", "a", "b", "--algorithm", "quantum")
