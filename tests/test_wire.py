"""Round-trip guarantees of the versioned JSON wire format.

Every request kind and every response shape must survive
encode -> JSON bytes -> decode with ``==`` equality on all fields --
floats included (shortest-round-trip repr), ``stats.extra`` included,
failure statuses and resilience flags included.  Envelope violations
(wrong version, unknown op, malformed JSON) must raise ``WireError``,
never return partial objects.
"""

import json
import math

import pytest

from repro.core.result import ClosestPair, CPQResult
from repro.net import wire
from repro.rtree.entries import LeafEntry
from repro.service import (
    CPQRequest,
    KNNRequest,
    PlanDecision,
    QueryResponse,
    RangeRequest,
)
from repro.storage.stats import QueryStats


def _roundtrip_request(request):
    return wire.loads_request(wire.dumps_request(request))


def _roundtrip_response(response):
    return wire.loads_response(wire.dumps_response(response))


class TestRequestRoundTrip:
    def test_cpq_all_fields(self):
        request = CPQRequest(
            pair="counties-vs-rivers",
            k=25,
            algorithm="heap",
            deadline_ms=1500.0,
            use_cache=False,
            height_strategy="fix-at-leaves",
            tie_break="distance,p_oid,q_oid",
            maxmax_pruning=False,
            use_vectorized=False,
            workers=4,
        )
        decoded = _roundtrip_request(request)
        assert decoded == request

    def test_cpq_defaults(self):
        decoded = _roundtrip_request(CPQRequest(pair="default"))
        assert decoded == CPQRequest(pair="default")

    def test_knn(self):
        request = KNNRequest(
            pair="p-and-q", point=(0.125, 7.75), k=9, side="q",
            deadline_ms=50.0, use_cache=False,
        )
        assert _roundtrip_request(request) == request

    def test_range(self):
        request = RangeRequest(
            pair="default", lo=(0.0, -1.5), hi=(2.25, 3.0), side="p",
        )
        assert _roundtrip_request(request) == request

    def test_float_exactness(self):
        # 0.1 has no finite binary expansion; the wire must still
        # reproduce the exact double (shortest-repr JSON round-trip).
        request = KNNRequest(pair="default", point=(0.1, 1e-17), k=1)
        assert _roundtrip_request(request).point == (0.1, 1e-17)

    def test_minimal_envelope_fills_defaults(self):
        decoded = wire.decode_request({"v": wire.WIRE_VERSION})
        assert isinstance(decoded, CPQRequest)
        assert decoded.pair == "default"
        assert decoded.k == 1

    def test_wrong_version_rejected(self):
        with pytest.raises(wire.WireError, match="version"):
            wire.decode_request({"v": 99, "op": "cpq"})

    def test_missing_version_rejected(self):
        with pytest.raises(wire.WireError, match="version"):
            wire.decode_request({"op": "cpq", "k": 3})

    def test_unknown_op_rejected(self):
        with pytest.raises(wire.WireError, match="unknown op"):
            wire.decode_request({"v": wire.WIRE_VERSION, "op": "drop"})

    def test_non_object_rejected(self):
        with pytest.raises(wire.WireError, match="object"):
            wire.decode_request([1, 2, 3])

    def test_malformed_body_rejected(self):
        with pytest.raises(wire.WireError, match="bad 'knn' request"):
            # knn without its required point
            wire.decode_request({"v": wire.WIRE_VERSION, "op": "knn"})

    def test_invalid_json_bytes_rejected(self):
        with pytest.raises(wire.WireError, match="JSON"):
            wire.loads_request(b"{not json")


def _cpq_result():
    stats = QueryStats(
        disk_accesses=123,
        buffer_hits=456,
        distance_computations=789,
        node_pairs_visited=42,
        max_queue_size=17,
        queue_inserts=99,
        extra={
            "net": {
                "shards": 4,
                "failed_shards": [2],
                "partial": True,
                "shard_io": {"disk_reads": 10, "buffer_hits": 20},
            },
            "parallel": {"mode": "process"},
        },
    )
    pairs = [
        ClosestPair(0.25, (1.0, 2.0), (1.5, 2.0), 7, 11),
        ClosestPair(0.25, (3.0, 4.0), (3.0, 4.25), 8, 12),
        ClosestPair(1.0 / 3.0, (0.1, 0.2), (0.3, 0.4), 9, 13),
    ]
    return CPQResult(pairs=pairs, stats=stats, algorithm="HEAP", k=3)


class TestResponseRoundTrip:
    def test_ok_cpq_full(self):
        response = QueryResponse(
            status="ok",
            kind="cpq",
            result=_cpq_result(),
            algorithm="heap",
            plan=PlanDecision(
                algorithm="heap", reason="buffer fits both trees",
                estimated_accesses=120.5, estimated_distance=0.004,
                buffer_pages=64, height_p=3, height_q=2, k=3,
                workers=2, estimated_speedup=1.8,
            ),
            cached=True,
            stale=True,
            partial=True,
            latency_ms=12.75,
            disk_reads=123,
            buffer_hits=456,
            read_retries=3,
        )
        decoded = _roundtrip_response(response)
        assert decoded.status == "ok"
        assert decoded.kind == "cpq"
        # Pairs: identical values AND order -- the parity contract.
        assert decoded.result.pairs == response.result.pairs
        assert decoded.result.algorithm == "HEAP"
        assert decoded.result.k == 3
        assert decoded.result.stats == response.result.stats
        assert decoded.result.stats.extra["net"]["partial"] is True
        assert decoded.plan == response.plan
        assert decoded.cached and decoded.stale and decoded.partial
        assert decoded.latency_ms == 12.75
        assert decoded.disk_reads == 123
        assert decoded.buffer_hits == 456
        assert decoded.read_retries == 3
        assert decoded.error is None

    def test_knn_response(self):
        response = QueryResponse(
            status="ok", kind="knn",
            result=[
                (0.5, LeafEntry((1.0, 2.0), 3)),
                (math.pi, LeafEntry((4.0, 5.0), 6)),
            ],
            latency_ms=1.5,
        )
        decoded = _roundtrip_response(response)
        assert decoded.result == response.result

    def test_range_response(self):
        response = QueryResponse(
            status="ok", kind="range",
            result=[LeafEntry((0.0, 0.0), 1), LeafEntry((1.0, 1.0), 2)],
        )
        decoded = _roundtrip_response(response)
        assert decoded.result == response.result

    @pytest.mark.parametrize("status", [
        "rejected", "deadline_exceeded", "error", "overloaded",
        "unavailable",
    ])
    def test_failure_statuses(self, status):
        response = QueryResponse(
            status=status, kind="cpq", error="queue over threshold",
            latency_ms=0.25,
        )
        decoded = _roundtrip_response(response)
        assert decoded.status == status
        assert decoded.error == "queue over threshold"
        assert decoded.result is None
        assert decoded.plan is None

    def test_non_json_extra_degrades_to_repr(self):
        # stats.extra is an open dict; opaque values must not break
        # the response -- they travel as their repr.
        result = _cpq_result()
        result.stats.extra["opaque"] = {1, 2}
        encoded = wire.encode_response(
            QueryResponse(status="ok", kind="cpq", result=result)
        )
        payload = json.loads(json.dumps(encoded))  # must be JSON-safe
        assert isinstance(
            payload["result"]["stats"]["extra"]["opaque"], str
        )

    def test_wrong_version_rejected(self):
        with pytest.raises(wire.WireError, match="version"):
            wire.decode_response({"v": 99, "status": "ok", "kind": "cpq"})

    def test_envelope_missing_kind_rejected(self):
        with pytest.raises(wire.WireError, match="bad response"):
            wire.decode_response({"v": wire.WIRE_VERSION, "status": "ok"})
