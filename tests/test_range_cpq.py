"""The range/colored query family: exact parity with filtered truth.

The contract (RCP literature semantics on the paper's K-CPQ engine):
a constrained query returns *byte-identical* pairs -- values AND tie
order -- to filtering the unconstrained answer down to the qualifying
pairs.  The KHeap's canonical total order makes the retained set a
pure function of the offered qualifying-pair set, so the reference is
computed by running the engine unconstrained at ``k = |P| x |Q|`` and
filtering; any deviation means a constrained traversal pruned a
qualifying pair or leaked a non-qualifying one.

Covered here: every ``supports_range`` algorithm on SEQUOIA-like
clustered data and on the adversarial all-equal-distance set (where
tie order is the whole answer), in process, under the parallel
executor, and over a real socket at 2 shards; the RCP candidate
structure's exact/containment reuse; and the service/wire behaviour
(``bad_request`` status, HTTP 400, v2 envelope round trip).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import (
    COLOR_ALGORITHMS,
    RANGE_ALGORITHMS,
    CPQRequest,
    k_closest_pairs,
)
from repro.core.constraints import ColorSpec, RangeSpec
from repro.rtree.bulk import bulk_load

WINDOW = RangeSpec((0.25, 0.25), (0.7, 0.7))


def reference_pairs(tree_p, tree_q, k, range_spec=None, colors=None):
    """Filter the unconstrained answer down to qualifying pairs."""
    total = len(tree_p) * len(tree_q)
    everything = k_closest_pairs(
        tree_p, tree_q, request=CPQRequest(k=total, algorithm="heap")
    )
    kept = []
    for pair in everything.pairs:
        if range_spec is not None:
            if range_spec.constrains_p and not range_spec.contains_point(
                    pair.p):
                continue
            if range_spec.constrains_q and not range_spec.contains_point(
                    pair.q):
                continue
        if colors is not None and not colors.admits_pair(
                pair.p_oid, pair.q_oid):
            continue
        kept.append(pair)
    return kept[:k]


@pytest.fixture(scope="module")
def sequoia_trees():
    from repro.datasets import sequoia_like

    points_p = [tuple(p) for p in sequoia_like(400, seed=2000)]
    points_q = [tuple(p) for p in sequoia_like(400, seed=2024)]
    return bulk_load(points_p), bulk_load(points_q)


@pytest.fixture(scope="module")
def adversarial_trees():
    """Every candidate pair at distance 1.0 and half of each set on
    the window boundary: qualification and tie order do all the work."""
    tree_p = bulk_load([(0.25, 0.25)] * 30 + [(0.0, 0.25)] * 30)
    tree_q = bulk_load([(0.25, 1.25)] * 30 + [(0.0, 1.25)] * 30)
    return tree_p, tree_q


class TestRangeParity:
    @pytest.mark.parametrize("algorithm", RANGE_ALGORITHMS)
    def test_sequoia_byte_parity(self, sequoia_trees, algorithm):
        tree_p, tree_q = sequoia_trees
        expected = reference_pairs(tree_p, tree_q, 10,
                                   range_spec=WINDOW)
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=10, algorithm=algorithm, range=WINDOW),
        )
        assert result.pairs == expected

    @pytest.mark.parametrize("algorithm", RANGE_ALGORITHMS)
    def test_all_equal_distance_ties(self, adversarial_trees, algorithm):
        tree_p, tree_q = adversarial_trees
        window = RangeSpec((0.0, 0.0), (1.0, 2.0), mode="both")
        expected = reference_pairs(tree_p, tree_q, 15,
                                   range_spec=window)
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=15, algorithm=algorithm, range=window),
        )
        assert [p.distance for p in result.pairs] == [1.0] * 15
        assert result.pairs == expected

    @pytest.mark.parametrize("mode", ["p", "q"])
    def test_single_side_modes(self, sequoia_trees, mode):
        tree_p, tree_q = sequoia_trees
        window = RangeSpec((0.3, 0.3), (0.6, 0.6), mode=mode)
        expected = reference_pairs(tree_p, tree_q, 8, range_spec=window)
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=8, algorithm="clipped", range=window),
        )
        assert result.pairs == expected

    def test_empty_window_returns_nothing(self, sequoia_trees):
        tree_p, tree_q = sequoia_trees
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(
                k=5, algorithm="clipped",
                range=((10.0, 10.0), (11.0, 11.0)),
            ),
        )
        assert result.pairs == []

    def test_scalar_path_matches_vectorized(self, sequoia_trees):
        tree_p, tree_q = sequoia_trees
        vec, scalar = (
            k_closest_pairs(
                tree_p,
                tree_q,
                request=CPQRequest(
                    k=10, algorithm="clipped", range=WINDOW,
                    use_vectorized=use_vectorized,
                ),
            )
            for use_vectorized in (True, False)
        )
        assert vec.pairs == scalar.pairs

    @pytest.mark.parametrize("algorithm", ["heap", "clipped"])
    def test_parallel_workers_byte_parity(self, sequoia_trees, algorithm):
        tree_p, tree_q = sequoia_trees
        serial = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=10, algorithm=algorithm, range=WINDOW),
        )
        parallel = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(
                k=10, algorithm=algorithm, range=WINDOW, workers=3,
            ),
        )
        assert parallel.stats.extra["parallel"]["workers"] == 3
        assert parallel.pairs == serial.pairs

    @given(
        st.integers(0, 2**32 - 1),
        st.floats(0.0, 0.8), st.floats(0.0, 0.8),
        st.floats(0.05, 0.5), st.floats(0.05, 0.5),
        st.integers(1, 8),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_windows_property(self, seed, x0, y0, w, h, k):
        rng = random.Random(seed)
        points_p = [(rng.random(), rng.random()) for __ in range(60)]
        points_q = [(rng.random(), rng.random()) for __ in range(60)]
        tree_p, tree_q = bulk_load(points_p), bulk_load(points_q)
        window = RangeSpec((x0, y0), (x0 + w, y0 + h))
        expected = reference_pairs(tree_p, tree_q, k, range_spec=window)
        for algorithm in RANGE_ALGORITHMS:
            result = k_closest_pairs(
                tree_p,
                tree_q,
                request=CPQRequest(
                    k=k, algorithm=algorithm, range=window,
                ),
            )
            assert result.pairs == expected, algorithm


class TestColoredParity:
    @pytest.mark.parametrize("algorithm", COLOR_ALGORITHMS)
    def test_distinct_categories(self, sequoia_trees, algorithm):
        tree_p, tree_q = sequoia_trees
        colors = ColorSpec(modulus=3, distinct=True)
        kwargs = dict(k=10, algorithm=algorithm, colors=colors)
        if algorithm == "rcp":
            kwargs["range"] = RangeSpec((0.0, 0.0), (1.0, 1.0))
        expected = reference_pairs(
            tree_p, tree_q, 10,
            range_spec=kwargs.get("range"), colors=colors,
        )
        result = k_closest_pairs(
            tree_p, tree_q, request=CPQRequest(**kwargs)
        )
        assert result.pairs == expected

    def test_ties_across_categories(self, adversarial_trees):
        # All distances equal AND every color class populated: the
        # answer is decided purely by qualification + canonical order.
        tree_p, tree_q = adversarial_trees
        colors = ColorSpec(modulus=4, colors_p=(0, 1), distinct=True)
        expected = reference_pairs(tree_p, tree_q, 12, colors=colors)
        for algorithm in ("naive", "heap", "clipped"):
            result = k_closest_pairs(
                tree_p,
                tree_q,
                request=CPQRequest(
                    k=12, algorithm=algorithm, colors=colors,
                ),
            )
            assert [p.distance for p in result.pairs] == [1.0] * 12
            assert result.pairs == expected, algorithm

    def test_range_and_colors_combined(self, sequoia_trees):
        tree_p, tree_q = sequoia_trees
        colors = ColorSpec(modulus=2, distinct=True)
        expected = reference_pairs(
            tree_p, tree_q, 6, range_spec=WINDOW, colors=colors
        )
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(
                k=6, algorithm="clipped", range=WINDOW, colors=colors,
            ),
        )
        assert result.pairs == expected


class TestRCPReuse:
    def test_exact_repeat_reuses_candidates(self, sequoia_trees):
        tree_p, tree_q = sequoia_trees
        window = RangeSpec((0.2, 0.2), (0.65, 0.65))
        request = CPQRequest(k=5, algorithm="rcp", range=window)
        first = k_closest_pairs(tree_p, tree_q, request=request)
        assert first.stats.extra["rcp"]["source"] == "computed"
        again = k_closest_pairs(tree_p, tree_q, request=request)
        assert again.stats.extra["rcp"]["source"] == "exact"
        assert again.stats.node_pairs_visited == 0
        assert again.pairs == first.pairs

    def test_reversed_corner_window_is_exact_hit(self, sequoia_trees):
        tree_p, tree_q = sequoia_trees
        k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(
                k=5, algorithm="rcp", range=((0.1, 0.1), (0.5, 0.5)),
            ),
        )
        flipped = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(
                k=5, algorithm="rcp", range=((0.5, 0.5), (0.1, 0.1)),
            ),
        )
        assert flipped.stats.extra["rcp"]["source"] == "exact"

    def test_subwindow_containment_reuse(self, sequoia_trees):
        tree_p, tree_q = sequoia_trees
        k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(
                k=4, algorithm="rcp", range=((0.0, 0.0), (0.9, 0.9)),
            ),
        )
        inner_window = RangeSpec((0.3, 0.3), (0.55, 0.55))
        inner = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=4, algorithm="rcp",
                               range=inner_window),
        )
        if inner.stats.extra["rcp"]["source"] == "containment":
            assert inner.stats.node_pairs_visited == 0
        # Reused or not, the answer must be the filtered truth.
        assert inner.pairs == reference_pairs(
            tree_p, tree_q, 4, range_spec=inner_window
        )

    def test_rcp_requires_window(self, sequoia_trees):
        tree_p, tree_q = sequoia_trees
        with pytest.raises(ValueError, match="requires a range"):
            k_closest_pairs(
                tree_p, tree_q,
                request=CPQRequest(k=3, algorithm="rcp"),
            )


class TestServiceAndSocket:
    def test_service_rejects_incapable_algorithm(self, sequoia_trees):
        from repro.service import (
            CPQRequest as ServiceCPQ,
            STATUS_BAD_REQUEST,
            QueryService,
        )

        tree_p, tree_q = sequoia_trees
        service = QueryService(workers=1)
        service.register_pair("pair", tree_p, tree_q)
        with service:
            response = service.execute(ServiceCPQ(
                pair="pair", k=3, algorithm="incremental",
                range=((0.0, 0.0), (1.0, 1.0)),
            ))
            assert response.status == STATUS_BAD_REQUEST
            assert "does not support range" in response.error

    def test_ranged_query_through_service_cache(self, sequoia_trees):
        from repro.service import CPQRequest as ServiceCPQ, QueryService

        tree_p, tree_q = sequoia_trees
        service = QueryService(workers=1, cache_size=16)
        service.register_pair("pair", tree_p, tree_q)
        with service:
            spec = dict(pair="pair", k=4, algorithm="clipped")
            first = service.execute(ServiceCPQ(
                range=((0.2, 0.2), (0.7, 0.7)), **spec
            ))
            assert first.status == "ok"
            # Same window, corner-reversed: must be served from cache.
            flipped = service.execute(ServiceCPQ(
                range=((0.7, 0.7), (0.2, 0.2)), **spec
            ))
            assert flipped.cached
            assert flipped.result.pairs == first.result.pairs
            # A different window must NOT hit the cache.
            other = service.execute(ServiceCPQ(
                range=((0.1, 0.1), (0.7, 0.7)), **spec
            ))
            assert not other.cached

    def test_two_shard_socket_byte_parity(self, tmp_path):
        from repro.net import NetClient, NetServer, ShardManager, tree_spec
        from repro.service import CPQRequest as ServiceCPQ, QueryService
        from repro.storage.paged_file import PagedFile
        from repro.storage.store import FilePageStore

        def file_tree(name, points):
            store = FilePageStore(str(tmp_path / name), page_size=1024)
            return bulk_load(points, file=PagedFile(store,
                                                    page_size=1024))

        rng = random.Random(17)
        points_p = [(rng.random(), rng.random()) for __ in range(200)]
        points_q = [(rng.random(), rng.random()) for __ in range(200)]
        tree_p = file_tree("p.pages", points_p)
        tree_q = file_tree("q.pages", points_q)
        window = RangeSpec((0.2, 0.2), (0.75, 0.75))
        colors = ColorSpec(modulus=2, distinct=True)
        serial = {
            algorithm: k_closest_pairs(
                tree_p,
                tree_q,
                request=CPQRequest(
                    k=8, algorithm=algorithm, range=window,
                    colors=colors,
                ),
            )
            for algorithm in ("naive", "exh", "sim", "std", "heap")
        }
        expected = reference_pairs(tree_p, tree_q, 8,
                                   range_spec=window, colors=colors)
        manager = ShardManager(tree_spec(tree_p), tree_spec(tree_q),
                               shards=2)
        service = QueryService(
            workers=2, cpq_executor=manager.service_executor()
        )
        service.register_pair("default", manager.tree_p, manager.tree_q)
        server = NetServer(service, manager=manager).start_in_thread()
        try:
            with NetClient("127.0.0.1", server.port) as client:
                for algorithm, direct in serial.items():
                    assert direct.pairs == expected, algorithm
                    response = client.query(ServiceCPQ(
                        pair="default", k=8, algorithm=algorithm,
                        range=window, colors=colors, use_cache=False,
                    ))
                    assert response.status == "ok", response.error
                    # Pairs AND tie order survive the socket, the v2
                    # JSON envelope, and the scatter-gather.
                    assert response.result.pairs == direct.pairs
        finally:
            server.close()

    def test_capability_error_is_http_400(self, tmp_path):
        import http.client
        import json

        from repro.net import NetServer
        from repro.service import QueryService

        tree_p = bulk_load([(0.1, 0.1), (0.4, 0.9)])
        tree_q = bulk_load([(0.2, 0.3), (0.8, 0.8)])
        service = QueryService(workers=1)
        service.register_pair("default", tree_p, tree_q)
        server = NetServer(service).start_in_thread()
        try:
            conn = http.client.HTTPConnection("127.0.0.1", server.port)
            body = json.dumps({
                "v": 2, "op": "cpq", "pair": "default", "k": 2,
                "algorithm": "incremental",
                "range": {"lo": [0.0, 0.0], "hi": [1.0, 1.0]},
            })
            conn.request("POST", "/v1/query", body=body,
                         headers={"Content-Type": "application/json"})
            http_response = conn.getresponse()
            payload = json.loads(http_response.read())
            assert http_response.status == 400
            assert payload["status"] == "bad_request"
            assert "does not support range" in payload["error"]
            conn.close()
        finally:
            server.close()
