"""Property tests for the Section 2.3 metrics (the paper's Figure 1).

The central soundness facts the CPQ algorithms rely on:

* Inequality 1: MINMINDIST <= dist(p, q) <= MAXMAXDIST for all point
  pairs drawn from the two MBRs.
* Inequality 2: at least one pair of points, one per MBR built tightly
  around its point set, lies within MINMAXDIST.
"""

import itertools
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.mbr import MBR
from repro.geometry.metrics import (
    maxdist,
    maxmaxdist,
    mindist,
    minmaxdist,
    minmindist,
    point_mbr_mindist,
    point_mbr_minmaxdist,
)
from repro.geometry.minkowski import CHEBYSHEV, EUCLIDEAN, MANHATTAN

coord = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)
point = st.tuples(coord, coord)
point_sets = st.lists(point, min_size=1, max_size=8)
metrics = st.sampled_from([EUCLIDEAN, MANHATTAN, CHEBYSHEV])


class TestKnownValues:
    def test_disjoint_boxes(self):
        a = MBR((0, 0), (1, 1))
        b = MBR((4, 0), (5, 1))
        assert mindist(a, b) == pytest.approx(3.0)
        assert maxdist(a, b) == pytest.approx(math.hypot(5, 1))

    def test_intersecting_boxes_mindist_zero(self):
        a = MBR((0, 0), (2, 2))
        b = MBR((1, 1), (3, 3))
        assert mindist(a, b) == 0.0

    def test_contained_box(self):
        outer = MBR((0, 0), (10, 10))
        inner = MBR((4, 4), (6, 6))
        assert mindist(outer, inner) == 0.0
        assert maxdist(outer, inner) == pytest.approx(math.hypot(6, 6))

    def test_diagonal_offset(self):
        a = MBR((0, 0), (1, 1))
        b = MBR((2, 2), (3, 3))
        assert mindist(a, b) == pytest.approx(math.sqrt(2))

    def test_point_boxes_degenerate_to_point_distance(self):
        a = MBR.from_point((0, 0))
        b = MBR.from_point((3, 4))
        for f in (mindist, maxdist, minmaxdist, minmindist, maxmaxdist):
            assert f(a, b) == pytest.approx(5.0)

    def test_minmaxdist_between_ordering(self):
        a = MBR((0, 0), (2, 3))
        b = MBR((5, 1), (9, 8))
        lo = minmindist(a, b)
        mid = minmaxdist(a, b)
        hi = maxmaxdist(a, b)
        assert lo <= mid <= hi

    def test_manhattan_mindist(self):
        a = MBR((0, 0), (1, 1))
        b = MBR((3, 3), (4, 4))
        assert mindist(a, b, MANHATTAN) == pytest.approx(4.0)
        assert mindist(a, b, CHEBYSHEV) == pytest.approx(2.0)


class TestInequalityOne:
    @given(point_sets, point_sets, metrics)
    def test_bounds_hold_for_all_pairs(self, pts_p, pts_q, metric):
        box_p = MBR.from_points(pts_p)
        box_q = MBR.from_points(pts_q)
        lo = minmindist(box_p, box_q, metric)
        hi = maxmaxdist(box_p, box_q, metric)
        for p, q in itertools.product(pts_p, pts_q):
            d = metric.distance(p, q)
            assert lo <= d * (1 + 1e-9) + 1e-9
            assert d <= hi * (1 + 1e-9) + 1e-9

    @given(point_sets, point_sets, metrics)
    def test_mindist_is_tightest_zero_when_overlapping(
        self, pts_p, pts_q, metric
    ):
        box_p = MBR.from_points(pts_p)
        box_q = MBR.from_points(pts_q)
        if box_p.intersects(box_q):
            assert minmindist(box_p, box_q, metric) == 0.0


class TestInequalityTwo:
    @given(point_sets, point_sets, metrics)
    def test_some_pair_within_minmaxdist(self, pts_p, pts_q, metric):
        # The MBRs are tight around the sets, so every face holds a
        # point; Inequality 2 must then guarantee one pair within the
        # MINMAXDIST bound.
        box_p = MBR.from_points(pts_p)
        box_q = MBR.from_points(pts_q)
        bound = minmaxdist(box_p, box_q, metric)
        closest = min(
            metric.distance(p, q)
            for p, q in itertools.product(pts_p, pts_q)
        )
        assert closest <= bound * (1 + 1e-9) + 1e-9

    @given(point_sets, point_sets, metrics)
    def test_sandwiched_between_other_metrics(self, pts_p, pts_q, metric):
        box_p = MBR.from_points(pts_p)
        box_q = MBR.from_points(pts_q)
        lo = minmindist(box_p, box_q, metric)
        mid = minmaxdist(box_p, box_q, metric)
        hi = maxmaxdist(box_p, box_q, metric)
        assert lo <= mid * (1 + 1e-12) + 1e-12
        assert mid <= hi * (1 + 1e-12) + 1e-12


class TestSymmetry:
    @given(point_sets, point_sets, metrics)
    def test_all_metrics_symmetric(self, pts_p, pts_q, metric):
        a = MBR.from_points(pts_p)
        b = MBR.from_points(pts_q)
        for f in (mindist, maxdist, minmaxdist):
            assert f(a, b, metric) == pytest.approx(f(b, a, metric))


class TestPointMBRMetrics:
    @given(point, point_sets, metrics)
    def test_mindist_lower_bounds_all(self, query, pts, metric):
        box = MBR.from_points(pts)
        bound = point_mbr_mindist(query, box, metric)
        for p in pts:
            assert bound <= metric.distance(query, p) * (1 + 1e-9) + 1e-9

    @given(point, point_sets, metrics)
    def test_minmaxdist_upper_bounds_some(self, query, pts, metric):
        box = MBR.from_points(pts)
        bound = point_mbr_minmaxdist(query, box, metric)
        nearest = min(metric.distance(query, p) for p in pts)
        assert nearest <= bound * (1 + 1e-9) + 1e-9

    @given(point, point_sets, metrics)
    def test_point_metrics_match_degenerate_box_metrics(
        self, query, pts, metric
    ):
        box = MBR.from_points(pts)
        as_box = MBR.from_point(query)
        assert point_mbr_mindist(query, box, metric) == pytest.approx(
            mindist(as_box, box, metric)
        )

    def test_point_inside_box_mindist_zero(self):
        box = MBR((0, 0), (2, 2))
        assert point_mbr_mindist((1, 1), box) == 0.0

    def test_known_minmaxdist(self):
        # Unit square, query at origin corner: pin x to the near face
        # (x = 0) and go to the far y bound -> distance 1.
        box = MBR((0, 0), (1, 1))
        assert point_mbr_minmaxdist((0, 0), box) == pytest.approx(1.0)
