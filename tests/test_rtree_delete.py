"""R-tree deletion tests (CondenseTree, root shrinking, reinsertions)."""

import random

import pytest

from repro.rtree.tree import RTree, RTreeConfig
from repro.rtree.validate import validate
from repro.storage.page import PageLayout

SMALL = PageLayout(page_size=16 + 4 * 48)  # M = 4


def build(points):
    tree = RTree(RTreeConfig(layout=SMALL))
    for oid, point in enumerate(points):
        tree.insert(point, oid)
    return tree


class TestDelete:
    def test_delete_existing(self):
        tree = build([(1.0, 1.0), (2.0, 2.0)])
        assert tree.delete((1.0, 1.0), 0)
        assert len(tree) == 1
        validate(tree)

    def test_delete_missing_point(self):
        tree = build([(1.0, 1.0)])
        assert not tree.delete((9.0, 9.0))
        assert len(tree) == 1

    def test_delete_wrong_oid(self):
        tree = build([(1.0, 1.0)])
        assert not tree.delete((1.0, 1.0), oid=999)
        assert len(tree) == 1

    def test_delete_without_oid_matches_any(self):
        tree = build([(1.0, 1.0), (1.0, 1.0)])
        assert tree.delete((1.0, 1.0))
        assert len(tree) == 1

    def test_delete_from_empty(self):
        tree = RTree()
        assert not tree.delete((0.0, 0.0))

    def test_delete_last_point_empties_tree(self):
        tree = build([(1.0, 1.0)])
        assert tree.delete((1.0, 1.0), 0)
        assert len(tree) == 0
        assert tree.height == 0
        assert tree.read_root() is None
        validate(tree)

    def test_root_shrinks_when_underfull(self):
        points = [(float(i), float(i)) for i in range(5)]
        tree = build(points)  # height 2 after root split
        assert tree.height == 2
        for i in range(4):
            assert tree.delete((float(i), float(i)), i)
        assert len(tree) == 1
        validate(tree)

    def test_delete_everything_large(self):
        rng = random.Random(5)
        points = [(rng.random(), rng.random()) for __ in range(120)]
        tree = build(points)
        order = list(range(len(points)))
        rng.shuffle(order)
        for oid in order:
            assert tree.delete(points[oid], oid)
            validate(tree)
        assert len(tree) == 0

    def test_interleaved_insert_delete(self):
        rng = random.Random(17)
        tree = RTree(RTreeConfig(layout=SMALL))
        live = {}
        next_oid = 0
        for step in range(400):
            if live and rng.random() < 0.45:
                oid = rng.choice(list(live))
                assert tree.delete(live.pop(oid), oid)
            else:
                point = (rng.random(), rng.random())
                tree.insert(point, next_oid)
                live[next_oid] = point
                next_oid += 1
            if step % 50 == 0:
                validate(tree)
        validate(tree)
        stored = sorted((e.oid, e.point) for e in tree.iter_leaf_entries())
        expected = sorted((oid, p) for oid, p in live.items())
        assert stored == expected

    def test_reinsert_after_delete_all(self):
        tree = build([(float(i), 0.0) for i in range(30)])
        for i in range(30):
            assert tree.delete((float(i), 0.0), i)
        for i in range(30):
            tree.insert((0.0, float(i)), 100 + i)
        assert len(tree) == 30
        validate(tree)
