"""Tests for the FIFO / LFU / CLOCK buffer policies."""

import pytest

from repro.storage.buffer import LRUBuffer
from repro.storage.paged_file import PagedFile
from repro.storage.policies import (
    BUFFER_POLICIES,
    ClockBuffer,
    FIFOBuffer,
    LFUBuffer,
    make_buffer,
)


def loader_factory(log):
    def loader(page_id):
        log.append(page_id)
        return bytes([page_id % 256]) * 4

    return loader


class PolicyContract:
    """Behaviour every replacement policy must share."""

    policy = ""

    def make(self, capacity):
        return make_buffer(self.policy, capacity)

    def test_miss_then_hit(self):
        log = []
        buffer = self.make(2)
        loader = loader_factory(log)
        buffer.read(1, loader)
        buffer.read(1, loader)
        assert log == [1]
        assert buffer.stats.buffer_hits == 1

    def test_zero_capacity(self):
        log = []
        buffer = self.make(0)
        loader = loader_factory(log)
        buffer.read(1, loader)
        buffer.read(1, loader)
        assert log == [1, 1]
        assert len(buffer) == 0

    def test_capacity_respected(self):
        buffer = self.make(3)
        loader = loader_factory([])
        for pid in range(10):
            buffer.read(pid, loader)
        assert len(buffer) == 3

    def test_invalidate(self):
        log = []
        buffer = self.make(2)
        loader = loader_factory(log)
        buffer.read(1, loader)
        buffer.invalidate(1)
        buffer.read(1, loader)
        assert log == [1, 1]

    def test_clear_and_reuse(self):
        buffer = self.make(2)
        loader = loader_factory([])
        for pid in range(5):
            buffer.read(pid, loader)
        buffer.clear()
        assert len(buffer) == 0
        buffer.read(1, loader)
        assert 1 in buffer

    def test_resize_shrinks(self):
        buffer = self.make(4)
        loader = loader_factory([])
        for pid in range(4):
            buffer.read(pid, loader)
        buffer.resize(1)
        assert len(buffer) == 1
        # buffer still consistent after shrink
        for pid in range(6):
            buffer.read(pid, loader)
        assert len(buffer) == 1


class TestFIFO(PolicyContract):
    policy = "fifo"

    def test_hit_does_not_refresh(self):
        log = []
        buffer = FIFOBuffer(2)
        loader = loader_factory(log)
        buffer.read(1, loader)
        buffer.read(2, loader)
        buffer.read(1, loader)  # hit; FIFO order unchanged
        buffer.read(3, loader)  # evicts 1 (oldest arrival)
        assert 1 not in buffer
        assert 2 in buffer


class TestLFU(PolicyContract):
    policy = "lfu"

    def test_evicts_least_frequent(self):
        log = []
        buffer = LFUBuffer(2)
        loader = loader_factory(log)
        buffer.read(1, loader)
        buffer.read(1, loader)
        buffer.read(1, loader)  # page 1: frequency 3
        buffer.read(2, loader)  # page 2: frequency 1
        buffer.read(3, loader)  # evicts 2
        assert 1 in buffer
        assert 2 not in buffer


class TestClock(PolicyContract):
    policy = "clock"

    def test_second_chance(self):
        log = []
        buffer = ClockBuffer(2)
        loader = loader_factory(log)
        buffer.read(1, loader)
        buffer.read(2, loader)
        buffer.read(1, loader)  # sets 1's reference bit
        buffer.read(3, loader)  # hand skips 1 (second chance), evicts 2
        assert 1 in buffer
        assert 2 not in buffer


class TestFactory:
    def test_registry(self):
        assert sorted(BUFFER_POLICIES) == ["clock", "fifo", "lfu", "lru"]
        assert isinstance(make_buffer("lru", 2), LRUBuffer)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="buffer policy"):
            make_buffer("arc", 2)

    def test_paged_file_accepts_policy(self):
        file = PagedFile(buffer_capacity=2, page_size=64,
                         buffer_policy="clock")
        assert isinstance(file.buffer, ClockBuffer)
        with pytest.raises(ValueError):
            PagedFile(buffer_policy="arc")


class TestPoliciesOnQueries:
    def test_all_policies_give_identical_results(self):
        """Replacement policy affects cost, never correctness."""
        import random

        from repro.core import CPQRequest, k_closest_pairs
        from repro.rtree.bulk import bulk_load
        from repro.rtree.tree import RTreeConfig

        rng = random.Random(77)
        pts_p = [(rng.random(), rng.random()) for __ in range(400)]
        pts_q = [(rng.random(), rng.random()) for __ in range(400)]
        reference = None
        costs = {}
        for policy in BUFFER_POLICIES:
            tree_p = bulk_load(pts_p, file=PagedFile(
                buffer_capacity=8, buffer_policy=policy))
            tree_q = bulk_load(pts_q, file=PagedFile(
                buffer_capacity=8, buffer_policy=policy))
            result = k_closest_pairs(
                tree_p,
                tree_q,
                request=CPQRequest(k=10, algorithm="std", reset_stats=True),
            )
            costs[policy] = result.stats.disk_accesses
            if reference is None:
                reference = result.distances()
            else:
                assert result.distances() == pytest.approx(reference)
        assert all(cost > 0 for cost in costs.values())
