"""The parallel partitioned executor's one promise: byte-identical
results.

``parallel_k_closest_pairs`` must return exactly the pairs -- values
AND tie order -- that the serial executor returns, for every algorithm,
worker count, partition depth and execution mode.  The suite checks
that promise on clustered (SEQUOIA-like) samples, on adversarial
all-equal-distance data where any tie-break slip shows, and across the
thread/process modes; plus the supporting machinery (SharedBound,
request validation, deadline propagation).
"""

import math
import random

import pytest

from repro.core.api import CPQRequest, DeadlineExceeded, k_closest_pairs
from repro.core.parallel import SharedBound, parallel_k_closest_pairs
from repro.core.result import ClosestPair
from repro.datasets import sequoia_like
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree
from repro.storage.paged_file import PagedFile
from repro.storage.store import FilePageStore

ALGORITHMS = ("naive", "exh", "sim", "std", "heap")


def _sequoia_trees(n=350, seeds=(2000, 2001)):
    return tuple(
        bulk_load([tuple(p) for p in sequoia_like(n, seed=seed)])
        for seed in seeds
    )


class TestThreadParity:
    @pytest.fixture(scope="class")
    def trees(self):
        return _sequoia_trees()

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("workers", [2, 8])
    @pytest.mark.parametrize("depth", [1, 2])
    def test_identical_to_serial(self, trees, algorithm, workers, depth):
        tree_p, tree_q = trees
        serial = k_closest_pairs(
            tree_p, tree_q,
            request=CPQRequest(k=10, algorithm=algorithm),
        )
        parallel = k_closest_pairs(
            tree_p, tree_q,
            request=CPQRequest(
                k=10, algorithm=algorithm,
                workers=workers, partition_depth=depth,
            ),
        )
        # Not just equal distances: identical pairs in identical order.
        assert parallel.pairs == serial.pairs
        assert parallel.algorithm == serial.algorithm

    def test_workers_do_not_change_cache_key(self):
        base = CPQRequest(k=5, algorithm="heap")
        parallel = CPQRequest(k=5, algorithm="heap", workers=8,
                              partition_depth=2, parallel_mode="process")
        assert base.cache_key() == parallel.cache_key()

    def test_worker_count_beyond_tasks(self, trees):
        # More workers than partition tasks must degrade gracefully.
        tree_p, tree_q = trees
        serial = k_closest_pairs(
            tree_p, tree_q, request=CPQRequest(k=3, algorithm="heap")
        )
        parallel = k_closest_pairs(
            tree_p, tree_q,
            request=CPQRequest(k=3, algorithm="heap", workers=64),
        )
        assert parallel.pairs == serial.pairs

    def test_empty_tree(self):
        empty = RTree()
        other = bulk_load([(0.0, 0.0)])
        result = k_closest_pairs(
            empty, other, request=CPQRequest(k=1, algorithm="heap",
                                             workers=4),
        )
        assert result.pairs == []

    def test_parallel_stats_recorded(self, trees):
        tree_p, tree_q = trees
        result = k_closest_pairs(
            tree_p, tree_q,
            request=CPQRequest(k=5, algorithm="heap", workers=2),
        )
        info = result.stats.extra["parallel"]
        assert info["mode"] == "thread"
        assert info["workers"] == 2
        assert info["tasks"] >= 1
        assert (info["tasks_completed"] + info["tasks_skipped"]
                == info["tasks"])


class TestAdversarialTies:
    """Every candidate pair at the same distance: tie order is the
    whole answer, so any divergence between executors is visible."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("depth", [1, 2])
    def test_all_equal_distances(self, algorithm, depth):
        tree_p = bulk_load([(0.0, 0.0)] * 60)
        tree_q = bulk_load([(1.0, 0.0)] * 60)
        serial = k_closest_pairs(
            tree_p, tree_q, request=CPQRequest(k=25, algorithm=algorithm)
        )
        parallel = k_closest_pairs(
            tree_p, tree_q,
            request=CPQRequest(k=25, algorithm=algorithm, workers=4,
                               partition_depth=depth),
        )
        assert serial.distances() == [1.0] * 25
        assert parallel.pairs == serial.pairs

    @pytest.mark.parametrize("algorithm", ["heap", "std"])
    def test_coincident_grids(self, algorithm):
        grid = [(float(i), float(j)) for i in range(8) for j in range(8)]
        tree_p = bulk_load(grid)
        tree_q = bulk_load(grid)
        serial = k_closest_pairs(
            tree_p, tree_q, request=CPQRequest(k=40, algorithm=algorithm)
        )
        parallel = k_closest_pairs(
            tree_p, tree_q,
            request=CPQRequest(k=40, algorithm=algorithm, workers=8,
                               partition_depth=2),
        )
        assert parallel.pairs == serial.pairs


class TestProcessMode:
    def _file_tree(self, tmp_path, name, points):
        store = FilePageStore(str(tmp_path / name), page_size=1024)
        return bulk_load(points, file=PagedFile(store, page_size=1024))

    def test_identical_to_serial(self, tmp_path):
        rng = random.Random(7)
        pts_p = [(rng.random(), rng.random()) for __ in range(250)]
        pts_q = [(rng.random(), rng.random()) for __ in range(250)]
        tree_p = self._file_tree(tmp_path, "p.pages", pts_p)
        tree_q = self._file_tree(tmp_path, "q.pages", pts_q)
        serial = k_closest_pairs(
            tree_p, tree_q, request=CPQRequest(k=10, algorithm="heap")
        )
        parallel = k_closest_pairs(
            tree_p, tree_q,
            request=CPQRequest(k=10, algorithm="heap", workers=2,
                               partition_depth=2,
                               parallel_mode="process"),
        )
        assert parallel.pairs == serial.pairs
        info = parallel.stats.extra["parallel"]
        assert info["mode"] == "process"
        assert info["child_io"]["disk_reads"] > 0

    def test_requires_file_backed_store(self):
        tree_p, tree_q = _sequoia_trees(n=80)
        with pytest.raises(ValueError, match="file-backed"):
            k_closest_pairs(
                tree_p, tree_q,
                request=CPQRequest(k=1, algorithm="heap", workers=2,
                                   parallel_mode="process"),
            )


class TestSharedBound:
    def _pairs(self, *distances):
        return [
            ClosestPair(d, (d, 0.0), (0.0, 0.0), i, i)
            for i, d in enumerate(distances)
        ]

    def test_starts_at_initial(self):
        shared = SharedBound(k=2, initial=5.0)
        assert shared.z == 5.0

    def test_kth_of_merged_snapshots(self):
        shared = SharedBound(k=3)
        shared.publish(0, self._pairs(1.0, 2.0))
        assert shared.z == math.inf  # only two pairs known
        shared.publish(1, self._pairs(3.0, 4.0))
        assert shared.z == 3.0

    def test_republish_replaces_not_appends(self):
        # A worker re-publishing a tighter snapshot must not leave its
        # old pairs in the merge (double-counting would understate the
        # K-th distance and prune true results).
        shared = SharedBound(k=3)
        shared.publish(0, self._pairs(1.0, 2.0, 9.0))
        assert shared.z == 9.0
        shared.publish(0, self._pairs(1.0, 2.0, 8.0))
        assert shared.z == 8.0
        # k=3 with only 3 live pairs: z is their max, not the 3rd of 6.
        shared.publish(0, self._pairs(1.0, 2.0))
        assert shared.z == math.inf

    def test_metric_bound_folds_in(self):
        shared = SharedBound(k=1)
        shared.publish(0, [], metric_bound=4.0)
        assert shared.z == 4.0
        shared.publish(1, self._pairs(6.0))
        assert shared.z == 4.0  # metric bound stays the tighter one
        shared.publish(1, self._pairs(2.5))
        assert shared.z == 2.5


class TestRequestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            CPQRequest(workers=0)

    def test_partition_depth_restricted(self):
        with pytest.raises(ValueError, match="partition_depth"):
            CPQRequest(partition_depth=3)

    def test_parallel_mode_restricted(self):
        with pytest.raises(ValueError, match="parallel_mode"):
            CPQRequest(parallel_mode="fork")


class TestCancellation:
    def test_deadline_propagates_from_workers(self):
        tree_p, tree_q = _sequoia_trees(n=300)

        calls = [0]

        def probe():
            calls[0] += 1
            if calls[0] > 5:
                raise DeadlineExceeded()

        with pytest.raises(DeadlineExceeded):
            parallel_k_closest_pairs(
                tree_p, tree_q,
                CPQRequest(k=10, algorithm="heap", workers=4),
                cancel_check=probe,
            )

    def test_expired_deadline_via_request(self):
        tree_p, tree_q = _sequoia_trees(n=300)
        with pytest.raises(DeadlineExceeded):
            k_closest_pairs(
                tree_p, tree_q,
                request=CPQRequest(k=10, algorithm="heap", workers=4,
                                   deadline_ms=1e-6),
            )


class TestTracing:
    def test_worker_spans_under_traverse(self):
        from repro.obs import Tracer

        tree_p, tree_q = _sequoia_trees(n=300)
        tracer = Tracer()
        k_closest_pairs(
            tree_p, tree_q,
            request=CPQRequest(k=5, algorithm="heap", workers=2),
            tracer=tracer,
        )
        trace = tracer.pop_traces()[-1]
        traverse = trace if trace.name == "traverse" else next(
            s for s in trace.walk() if s.name == "traverse"
        )
        workers = [s for s in traverse.children if s.name == "worker"]
        assert len(workers) == 2
        for span in workers:
            assert "tasks_completed" in span.attrs
            assert span.attrs["pairs"] >= 0
