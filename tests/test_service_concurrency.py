"""Concurrency stress tests for the query service.

Fires a mixed K-CPQ / K-NN / range workload at the service from 8
client threads and checks every response against single-threaded
ground truth, then verifies that tree mutations invalidate the result
cache (no entry of a mutated pair survives)."""

from __future__ import annotations

import math
import random
import threading

import pytest

from repro.core import k_closest_pairs
from repro.core.api import CPQRequest as CoreRequest
from repro.query import nearest_neighbors
from repro.rtree.bulk import bulk_load
from repro.service import (
    CPQRequest,
    KNNRequest,
    QueryService,
    RangeRequest,
    STATUS_OK,
)

CLIENT_THREADS = 8
QUERIES_PER_THREAD = 30  # 240 total, >= 200 required


@pytest.fixture(scope="module")
def stress_trees():
    rng = random.Random(0xBEEF)
    points_p = [(rng.random(), rng.random()) for __ in range(500)]
    points_q = [(rng.uniform(0.3, 1.3), rng.random())
                for __ in range(400)]
    tree_p = bulk_load(points_p)
    tree_q = bulk_load(points_q)
    for tree in (tree_p, tree_q):
        tree.file.set_buffer_capacity(32)
    return points_p, points_q, tree_p, tree_q


def build_workload(points_p, points_q):
    """A deterministic mixed request list with serial ground truth."""
    rng = random.Random(0xF00D)
    specs = []
    for i in range(CLIENT_THREADS * QUERIES_PER_THREAD):
        flavor = i % 4
        if flavor in (0, 1):  # half the workload is K-CPQ
            k = rng.choice((1, 2, 5, 10))
            specs.append(("cpq", CPQRequest(pair="pair", k=k)))
        elif flavor == 2:
            point = (rng.random(), rng.random())
            k = rng.choice((1, 3, 7))
            specs.append(("knn", KNNRequest(pair="pair", point=point,
                                            k=k)))
        else:
            x, y = rng.random() * 0.8, rng.random() * 0.8
            specs.append(("range", RangeRequest(
                pair="pair", lo=(x, y), hi=(x + 0.2, y + 0.2),
                side="q",
            )))
    return specs


def serial_ground_truth(specs, points_p, points_q, tree_p, tree_q):
    """Expected answers, computed single-threaded before serving."""
    expected = []
    for kind, request in specs:
        if kind == "cpq":
            result = k_closest_pairs(
                tree_p,
                tree_q,
                request=CoreRequest(k=request.k, algorithm="heap"),
            )
            expected.append(result.distances())
        elif kind == "knn":
            found = nearest_neighbors(tree_p, request.point,
                                      k=request.k)
            expected.append([d for d, __ in found])
        else:
            (x0, y0), (x1, y1) = request.lo, request.hi
            inside = sorted(
                p for p in points_q
                if x0 <= p[0] <= x1 and y0 <= p[1] <= y1
            )
            expected.append(inside)
    return expected


def test_stress_mixed_workload_matches_serial(stress_trees):
    points_p, points_q, tree_p, tree_q = stress_trees
    specs = build_workload(points_p, points_q)
    expected = serial_ground_truth(specs, points_p, points_q,
                                   tree_p, tree_q)

    service = QueryService(workers=8, queue_size=512, cache_size=64)
    service.register_pair("pair", tree_p, tree_q)
    responses = [None] * len(specs)
    errors = []

    def client(thread_index: int) -> None:
        try:
            for offset in range(QUERIES_PER_THREAD):
                index = thread_index * QUERIES_PER_THREAD + offset
                responses[index] = service.execute(specs[index][1],
                                                   timeout=120)
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(CLIENT_THREADS)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        service.close()

    assert not errors
    for (kind, __), response, truth in zip(specs, responses, expected):
        assert response is not None
        assert response.status == STATUS_OK
        if kind == "cpq":
            assert response.result.distances() == pytest.approx(truth)
        elif kind == "knn":
            got = [d for d, __ in response.result]
            assert got == pytest.approx(truth)
        else:
            got = sorted(e.point for e in response.result)
            assert got == truth

    snapshot = service.snapshot()
    by_status = snapshot["queries"]["by_status"]
    assert by_status.get(STATUS_OK, 0) == len(specs)
    # The workload repeats K-CPQ requests, so the cache must have
    # absorbed a good share of them.
    assert snapshot["cache"]["hits"] > 0
    assert snapshot["planner"]  # planner ran and was tallied


def test_mutation_invalidates_cache_entries():
    rng = random.Random(0xCAFE)
    tree_p = bulk_load([(rng.random(), rng.random())
                        for __ in range(200)])
    points_q = [(rng.random(), rng.random()) for __ in range(200)]
    tree_q = bulk_load(points_q)

    with QueryService(workers=2, cache_size=32) as service:
        service.register_pair("pair", tree_p, tree_q)
        # Populate the cache with several entries of this pair.
        for k in (1, 2, 3):
            assert service.execute(
                CPQRequest(pair="pair", k=k)
            ).status == STATUS_OK
        assert service.execute(CPQRequest(pair="pair", k=1)).cached
        assert len(service.cache) == 3
        old_generation = tree_p.generation

        # Mutate: a new P point a hair away from some Q point becomes
        # the closest pair.
        target = points_q[0]
        tree_p.insert((target[0] + 1e-9, target[1]), oid=99_999)
        assert tree_p.generation == old_generation + 1

        response = service.execute(CPQRequest(pair="pair", k=1))
        assert not response.cached
        assert response.result.pairs[0].p_oid == 99_999
        assert response.result.pairs[0].distance < 1e-6

        # No entry keyed on the old generation survives.
        for key in service.cache.keys():
            assert key[1] == tree_p.generation
        # And the stale k=2 / k=3 entries were eagerly dropped too.
        assert len(service.cache) == 1

        refreshed = service.execute(CPQRequest(pair="pair", k=1))
        assert refreshed.cached


def test_concurrent_submits_while_closing():
    """close() during traffic never hangs or raises; late submits are
    rejected with a structured response."""
    rng = random.Random(3)
    tree_p = bulk_load([(rng.random(), rng.random())
                        for __ in range(100)])
    tree_q = bulk_load([(rng.random(), rng.random())
                        for __ in range(100)])
    service = QueryService(workers=2, queue_size=16)
    service.register_pair("pair", tree_p, tree_q)
    for __ in range(4):
        service.submit(CPQRequest(pair="pair", k=1))
    service.close()
    late = service.execute(CPQRequest(pair="pair", k=1))
    assert late.status == "rejected"
