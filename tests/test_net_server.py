"""End-to-end contract of the asyncio edge: a real socket, byte parity.

One server over a 2-shard :class:`~repro.net.ShardManager` answers
every shardable algorithm with exactly the serial engine's pairs --
through HTTP, JSON and scatter-gather.  Around that headline: protocol
conformance (keep-alive, HTTP status mirroring, 400 on malformed
envelopes before the service is ever touched, 404/405), the auxiliary
endpoints, and graceful shutdown that drains in-flight queries instead
of abandoning them.
"""

import http.client
import json
import random
import threading

import pytest

from repro.core.api import CPQRequest, k_closest_pairs
from repro.net import NetClient, NetServer, ShardManager, tree_spec, wire
from repro.net.client import NetError
from repro.rtree.bulk import bulk_load
from repro.service import (
    CPQRequest as ServiceCPQ,
    KNNRequest,
    QueryService,
    RangeRequest,
)
from repro.storage.paged_file import PagedFile
from repro.storage.store import FilePageStore

ALGORITHMS = ("naive", "exh", "sim", "std", "heap")


def _file_tree(tmp_path, name, points):
    store = FilePageStore(str(tmp_path / name), page_size=1024)
    return bulk_load(points, file=PagedFile(store, page_size=1024))


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """Trees on disk, 2-shard manager, service, listening server."""
    tmp = tmp_path_factory.mktemp("net-e2e")
    rng = random.Random(11)
    tree_p = _file_tree(
        tmp, "p.pages",
        [(rng.random(), rng.random()) for __ in range(200)],
    )
    tree_q = _file_tree(
        tmp, "q.pages",
        [(rng.random(), rng.random()) for __ in range(200)],
    )
    serial = {
        algorithm: k_closest_pairs(
            tree_p, tree_q,
            request=CPQRequest(k=8, algorithm=algorithm),
        )
        for algorithm in ALGORITHMS
    }
    manager = ShardManager(tree_spec(tree_p), tree_spec(tree_q),
                           shards=2)
    service = QueryService(
        workers=4, cpq_executor=manager.service_executor()
    )
    service.register_pair("default", manager.tree_p, manager.tree_q)
    server = NetServer(service, manager=manager).start_in_thread()
    yield server, serial
    server.close()


@pytest.fixture()
def client(stack):
    server, __ = stack
    with NetClient("127.0.0.1", server.port) as net_client:
        yield net_client


class TestByteParity:
    def test_all_algorithms_identical_to_serial(self, stack, client):
        __, serial = stack
        for algorithm in ALGORITHMS:
            response = client.query(ServiceCPQ(
                pair="default", k=8, algorithm=algorithm,
                use_cache=False,
            ))
            assert response.status == "ok", response.error
            # The whole point: pairs AND tie order survive the
            # socket, the JSON, and the scatter-gather.
            assert response.result.pairs == serial[algorithm].pairs
            net = response.result.stats.extra["net"]
            assert net["shards"] == 2
            assert response.partial is False

    def test_cache_round_trip(self, client):
        request = ServiceCPQ(pair="default", k=4, algorithm="heap")
        first = client.query(request)
        second = client.query(request)
        assert first.status == second.status == "ok"
        assert second.cached is True
        assert second.result.pairs == first.result.pairs

    def test_knn_and_range_over_wire(self, client):
        knn = client.query(KNNRequest(
            pair="default", point=(0.5, 0.5), k=3,
        ))
        assert knn.status == "ok"
        assert len(knn.result) == 3
        found = client.query(RangeRequest(
            pair="default", lo=(0.0, 0.0), hi=(1.0, 1.0),
        ))
        assert found.status == "ok"
        assert len(found.result) == 200


class TestProtocol:
    def _raw(self, server, method, path, body=b"", headers=None):
        conn = http.client.HTTPConnection("127.0.0.1", server.port)
        try:
            conn.request(method, path, body=body,
                         headers=headers or {})
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def test_healthz_reports_shards(self, stack, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["pairs"] == ["default"]
        assert len(health["shards"]) == 2
        assert all(shard["alive"] for shard in health["shards"])
        assert health["on_failure"] == "recover"

    def test_healthz_reports_generation_and_net_counters(self, client):
        health = client.healthz()
        # Staleness surface: which snapshot generation the shards are
        # pinned to, plus the self-healing counter block.
        assert health["generation"] == {"p": 0, "q": 0}
        net = health["net"]
        for key in ("retries", "hedges", "hedge_wins", "respawns",
                    "reloads", "frame_errors", "dedup_dropped"):
            assert net[key] >= 0

    def test_healthz_reports_wal_size(self, tmp_path):
        from repro.storage.wal import WriteAheadLog

        wal = WriteAheadLog(str(tmp_path / "h.wal"), sync_mode="none")
        wal.begin(0)
        wal.log_write(1, b"x" * 64)
        wal.commit(1, root_id=1, height=1, count=1)
        service = QueryService(workers=1, queue_size=4)
        server = NetServer(service, wal=wal).start_in_thread()
        try:
            with NetClient("127.0.0.1", server.port) as probe:
                health = probe.healthz()
            assert health["wal"]["size_bytes"] > 0
            assert health["wal"]["checkpoints"] == 0
            wal.checkpoint()
            with NetClient("127.0.0.1", server.port) as probe:
                health = probe.healthz()
            assert health["wal"]["size_bytes"] == 0
            assert health["wal"]["checkpoints"] == 1
        finally:
            server.close()
            wal.close()

    def test_stats_snapshot(self, client):
        client.query(ServiceCPQ(pair="default", k=2))
        stats = client.stats()
        assert stats["queries"]["submitted"] >= 1
        assert "resilience" in stats

    def test_unknown_pair_is_structured_error(self, client):
        response = client.query(ServiceCPQ(pair="nope", k=1))
        assert response.status == "error"
        assert "unknown pair" in response.error

    def test_wrong_version_is_400(self, stack, client):
        server, __ = stack
        status, payload = self._raw(
            server, "POST", "/v1/query",
            json.dumps({"v": 99}).encode(),
        )
        assert status == 400
        assert "version" in payload["error"]
        with pytest.raises(wire.WireError, match="version"):
            client._exchange("POST", "/v1/query",
                             json.dumps({"v": 99}).encode())

    def test_malformed_json_is_400(self, stack):
        server, __ = stack
        status, payload = self._raw(server, "POST", "/v1/query",
                                    b"{not json")
        assert status == 400
        assert "JSON" in payload["error"]

    def test_unknown_route_is_404(self, stack):
        server, __ = stack
        status, __payload = self._raw(server, "GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, stack):
        server, __ = stack
        status, __payload = self._raw(server, "GET", "/v1/query")
        assert status == 405
        status, __payload = self._raw(server, "POST", "/healthz")
        assert status == 405

    def test_http_status_mirrors_overload(self, tmp_path):
        # A saturated service sheds; the edge must answer 503 with the
        # structured envelope intact.
        tree = bulk_load([(0.0, 0.0), (1.0, 1.0)])
        service = QueryService(workers=1, shed_threshold=1)
        service.register_pair("default", tree, tree)
        server = NetServer(service).start_in_thread()
        try:
            # Saturate the queue from inside: the service executes
            # serially, so a burst through raw sockets races; instead
            # drive the threshold to zero head-room deterministically.
            service.shed_threshold = 0
            conn = http.client.HTTPConnection("127.0.0.1", server.port)
            conn.request(
                "POST", "/v1/query",
                wire.dumps_request(ServiceCPQ(pair="default", k=1)),
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            conn.close()
            assert response.status == 503
            assert payload["status"] == "overloaded"
        finally:
            server.close()


class TestGracefulShutdown:
    def test_close_drains_in_flight_queries(self, tmp_path):
        """Queries in flight when close() starts must resolve -- the
        listener stops, handlers finish, then the service drains."""
        store = FilePageStore(str(tmp_path / "slow.pages"),
                              page_size=1024)
        tree = bulk_load(
            [(float(i % 20), float(i // 20)) for i in range(200)],
            file=PagedFile(store, page_size=1024),
        )
        # Cold buffer + per-miss latency: every query takes real time.
        tree.file.buffer.resize(0)
        tree.file.read_latency = 0.002
        service = QueryService(workers=2)
        service.register_pair("default", tree, tree)
        server = NetServer(service).start_in_thread()
        results = []
        lock = threading.Lock()

        def one_query() -> None:
            with NetClient("127.0.0.1", server.port) as net_client:
                try:
                    response = net_client.query(ServiceCPQ(
                        pair="default", k=5, algorithm="heap",
                        use_cache=False,
                    ))
                    outcome = response.status
                except NetError as exc:  # pragma: no cover
                    outcome = f"transport: {exc}"
            with lock:
                results.append(outcome)

        threads = [threading.Thread(target=one_query)
                   for __ in range(4)]
        for thread in threads:
            thread.start()
        # Let every request reach the server before shutdown begins.
        import time
        time.sleep(0.3)
        server.close()
        for thread in threads:
            thread.join(30.0)
        assert results == ["ok"] * 4
        # The service is fully closed behind the server.
        rejected = service.submit(ServiceCPQ(pair="default", k=1))
        assert rejected.result().status == "rejected"
