"""Public API surface tests (argument validation, stats, buffers)."""

import random

import pytest

from repro.core import CPQRequest, k_closest_pairs
from repro.core.api import closest_pair
from repro.rtree.bulk import bulk_load


@pytest.fixture(scope="module")
def trees():
    rng = random.Random(19)
    pts_p = [(rng.random(), rng.random()) for __ in range(600)]
    pts_q = [(rng.uniform(0.9, 1.9), rng.random()) for __ in range(600)]
    return bulk_load(pts_p), bulk_load(pts_q)


class TestValidation:
    def test_unknown_algorithm(self, trees):
        with pytest.raises(ValueError, match="unknown algorithm"):
            k_closest_pairs(*trees, request=CPQRequest(algorithm="quantum"))

    def test_algorithm_case_insensitive(self, trees):
        result = k_closest_pairs(*trees, request=CPQRequest(algorithm="HEAP"))
        assert result.algorithm == "HEAP"

    def test_invalid_k(self, trees):
        with pytest.raises(ValueError, match="k must be"):
            k_closest_pairs(*trees, request=CPQRequest(k=0))

    def test_negative_buffer(self, trees):
        with pytest.raises(ValueError, match="buffer_pages"):
            k_closest_pairs(*trees, request=CPQRequest(buffer_pages=-1))

    def test_unknown_height_strategy(self, trees):
        with pytest.raises(ValueError, match="height strategy"):
            k_closest_pairs(
                *trees,
                request=CPQRequest(height_strategy="sideways"),
            )

    def test_unknown_tie_break(self, trees):
        with pytest.raises(ValueError, match="tie criterion"):
            k_closest_pairs(
                *trees,
                request=CPQRequest(algorithm="std", tie_break="T7"),
            )


class TestStatistics:
    def test_stats_populated(self, trees):
        result = k_closest_pairs(
            *trees,
            request=CPQRequest(k=5, algorithm="std"),
        )
        assert result.stats.disk_accesses > 0
        assert result.stats.node_pairs_visited > 0
        assert result.stats.distance_computations > 0
        assert result.k == 5
        assert result.algorithm == "STD"

    def test_heap_tracks_queue_size(self, trees):
        result = k_closest_pairs(
            *trees,
            request=CPQRequest(k=5, algorithm="heap"),
        )
        assert result.stats.max_queue_size > 0
        assert result.stats.queue_inserts > 0

    def test_buffer_reduces_disk_accesses(self, trees):
        cold = k_closest_pairs(
            *trees,
            request=CPQRequest(k=100, algorithm="exh", buffer_pages=0),
        )
        warm = k_closest_pairs(
            *trees,
            request=CPQRequest(k=100, algorithm="exh", buffer_pages=256),
        )
        assert warm.stats.disk_accesses < cold.stats.disk_accesses
        assert warm.stats.buffer_hits > 0

    def test_reset_stats_gives_reproducible_costs(self, trees):
        first = k_closest_pairs(
            *trees,
            request=CPQRequest(k=3, algorithm="heap", buffer_pages=64),
        )
        second = k_closest_pairs(
            *trees,
            request=CPQRequest(k=3, algorithm="heap", buffer_pages=64),
        )
        assert first.stats.disk_accesses == second.stats.disk_accesses

    def test_pruning_hierarchy(self, trees):
        # Each refinement may only reduce the work done (on disjoint
        # workspaces, where pruning has traction).
        naive = k_closest_pairs(*trees, request=CPQRequest(algorithm="naive"))
        exh = k_closest_pairs(*trees, request=CPQRequest(algorithm="exh"))
        std = k_closest_pairs(*trees, request=CPQRequest(algorithm="std"))
        assert exh.stats.disk_accesses <= naive.stats.disk_accesses
        assert std.stats.disk_accesses <= exh.stats.disk_accesses


class TestResultType:
    def test_min_max_distance(self, trees):
        result = k_closest_pairs(*trees, request=CPQRequest(k=10))
        assert result.min_distance == result.pairs[0].distance
        assert result.max_distance == result.pairs[-1].distance
        assert result.min_distance <= result.max_distance

    def test_empty_result_distance_errors(self):
        from repro.core.result import CPQResult

        empty = CPQResult()
        with pytest.raises(ValueError):
            empty.min_distance
        with pytest.raises(ValueError):
            empty.max_distance

    def test_closest_pair_convenience(self, trees):
        single = closest_pair(*trees)
        full = k_closest_pairs(*trees, request=CPQRequest(k=1))
        assert single.distance == full.pairs[0].distance
