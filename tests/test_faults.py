"""Fault injection and resilience tests.

Exercises the whole resilience stack end to end: the deterministic
fault-injecting page store, the buffer pool's bounded retry, checksum
detection and healing of corrupt pages, graceful degradation of the
parallel executor, and the service layer's circuit breaker, load
shedding and stale degraded serving (see docs/RESILIENCE.md).
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.core import k_closest_pairs
from repro.core import api as core_api
from repro.errors import (
    PageCorruptionError,
    ServiceOverloadError,
    TransientIOError,
)
from repro.rtree.bulk import bulk_load
from repro.service import (
    CircuitBreaker,
    CPQRequest,
    QueryService,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_UNAVAILABLE,
)
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN
from repro.storage.buffer import RetryPolicy
from repro.storage.faults import (
    SCHEDULES,
    FaultPlan,
    FaultyPageStore,
    unwrap_tree_store,
    wrap_tree_store,
)
from repro.storage.paged_file import PagedFile
from repro.storage.store import FilePageStore, MemoryPageStore

#: The paper's five two-tree algorithms, all of which must survive
#: transient fault schedules with byte-identical answers.
CORE_ALGORITHMS = ("naive", "exh", "sim", "std", "heap")

NO_SLEEP = RetryPolicy(sleep=lambda _s: None)


def run_cpq(tree_p, tree_q, k, algorithm):
    return k_closest_pairs(
        tree_p, tree_q,
        request=core_api.CPQRequest(k=k, algorithm=algorithm),
    )


def make_store(pages: int = 8, page_size: int = 1024,
               plan: FaultPlan = FaultPlan()):
    """A faulty store over ``pages`` distinct in-memory page images."""
    inner = MemoryPageStore(page_size)
    for i in range(pages):
        pid = inner.allocate()
        inner.write(pid, bytes([i % 251]) * page_size)
    return FaultyPageStore(inner, plan, sleep=lambda _s: None)


@pytest.fixture(scope="module")
def tree_pair():
    rng = random.Random(0xFA17)
    points_p = [(rng.random(), rng.random()) for __ in range(400)]
    points_q = [(rng.uniform(0.3, 1.3), rng.random()) for __ in range(350)]
    return bulk_load(points_p), bulk_load(points_q)


# ---------------------------------------------------------------------------
# Fault store determinism
# ---------------------------------------------------------------------------

class TestFaultStoreDeterminism:
    def trace(self, store, reads: int = 200):
        outcomes = []
        for i in range(reads):
            try:
                data = store.read(i % len(store.inner))
                outcomes.append(("ok", data[:4]))
            except TransientIOError:
                outcomes.append(("transient", None))
        return outcomes

    def test_same_seed_same_faults(self):
        plan = FaultPlan(seed=99, p_transient=0.3, p_bitflip=0.2)
        first = self.trace(make_store(plan=plan))
        second = self.trace(make_store(plan=plan))
        assert first == second

    def test_different_seed_different_faults(self):
        first = self.trace(
            make_store(plan=FaultPlan(seed=1, p_transient=0.5))
        )
        second = self.trace(
            make_store(plan=FaultPlan(seed=2, p_transient=0.5))
        )
        assert first != second

    def test_transient_streaks_bounded(self):
        plan = FaultPlan(seed=5, p_transient=0.9, max_consecutive=2)
        store = make_store(plan=plan)
        streak = worst = 0
        for __ in range(300):
            try:
                store.read(0)
                streak = 0
            except TransientIOError:
                streak += 1
                worst = max(worst, streak)
        assert 0 < worst <= 2

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(p_transient=1.5)
        with pytest.raises(ValueError):
            FaultPlan(max_consecutive=0)

    def test_schedules_are_survivable(self):
        # Every bundled schedule must leave headroom for the default
        # retry budget: streaks shorter than max_attempts.
        policy = RetryPolicy()
        for name, plan in SCHEDULES.items():
            assert plan.max_consecutive < policy.max_attempts, name


# ---------------------------------------------------------------------------
# Buffer pool retry and miss-path accounting
# ---------------------------------------------------------------------------

class TestBufferRetry:
    def test_fail_n_then_succeed_retries(self):
        store = make_store()
        sleeps = []
        file = PagedFile(
            store, buffer_capacity=4,
            retry_policy=RetryPolicy(sleep=sleeps.append),
        )
        store.fail_reads[3] = 2
        data = file.read_page(3)
        assert data == store.inner.read(3)
        assert file.stats.read_retries == 2
        assert file.stats.read_failures == 0
        assert file.stats.disk_reads == 1
        # Exponential backoff: each wait doubles (within the cap).
        assert sleeps == [
            pytest.approx(0.001), pytest.approx(0.002)
        ]

    def test_exhausted_retries_raise_typed_error(self):
        store = make_store()
        file = PagedFile(store, buffer_capacity=4, retry_policy=NO_SLEEP)
        store.fail_reads[2] = 10 ** 6
        with pytest.raises(TransientIOError):
            file.read_page(2)
        assert file.stats.read_failures == 1
        assert file.stats.read_retries == NO_SLEEP.max_attempts - 1

    def test_failed_miss_leaves_no_phantom_frame(self):
        """A miss that raises mid-load must not half-insert a frame or
        skew the hit/miss counters (satellite regression)."""
        store = make_store()
        file = PagedFile(store, buffer_capacity=4, retry_policy=NO_SLEEP)
        store.fail_reads[1] = 10 ** 6
        with pytest.raises(TransientIOError):
            file.read_page(1)
        assert file.stats.disk_reads == 0
        assert file.stats.buffer_hits == 0
        # Nothing admitted: the next successful read is a clean miss,
        # served from the store, then a genuine hit.
        store.fail_reads[1] = 0
        assert file.read_page(1) == store.inner.read(1)
        assert file.stats.disk_reads == 1
        assert file.read_page(1) == store.inner.read(1)
        assert file.stats.buffer_hits == 1

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


# ---------------------------------------------------------------------------
# Short reads and checksummed pages
# ---------------------------------------------------------------------------

class TestShortRead:
    def test_truncated_file_fails_loudly(self, tmp_path):
        path = str(tmp_path / "trunc.pages")
        store = FilePageStore(path, page_size=1024)
        for __ in range(3):
            store.write(store.allocate(), b"\xAB" * 1024)
        store.flush()
        # Lose the tail of the file out from under the open store.
        os.truncate(path, 1024 + 100)
        with pytest.raises(PageCorruptionError) as excinfo:
            store.read(2)
        message = str(excinfo.value)
        assert "page 2" in message
        assert "expected 1024" in message
        assert excinfo.value.page_id == 2
        store.close()

    def test_truncated_reopen_rejected(self, tmp_path):
        path = str(tmp_path / "reopen.pages")
        store = FilePageStore(path, page_size=1024)
        store.write(store.allocate(), b"\xCD" * 1024)
        store.flush()
        store.close()
        os.truncate(path, 512)
        with pytest.raises(ValueError):
            FilePageStore(path, page_size=1024)


class TestChecksumHealing:
    def corrupt(self, page: bytes, bit: int) -> bytes:
        image = bytearray(page)
        image[bit // 8] ^= 1 << (bit % 8)
        return bytes(image)

    def test_wire_flip_heals_via_reread(self, tree_pair):
        """Corruption only in the buffered copy (a flipped bit on the
        wire) is detected by the checksum and healed by re-reading the
        intact stored page."""
        tree, __ = tree_pair
        root = tree.root_id
        clean = tree.file.store.read(root)
        expected = tree.read_node(root).entries
        tree._nodes.clear()
        tree.file.set_buffer_capacity(8)
        tree.file.stats.reset()
        try:
            # Poison the buffer frame; the store still holds clean
            # bytes, so the checksum-triggered re-read heals.
            tree.file.buffer.put(root, self.corrupt(clean, 777))
            node = tree.read_node(root)
            assert tree.stats.corrupt_reads == 1
            assert node.entries == expected
        finally:
            tree.file.set_buffer_capacity(0)
            tree._nodes.clear()

    def test_persistent_flip_raises_corruption(self, tree_pair):
        """At-rest damage survives the re-read: the checksum must
        surface it as PageCorruptionError, never a wrong node."""
        tree, __ = tree_pair
        wrapper = wrap_tree_store(tree, FaultPlan())
        try:
            wrapper.flip_bit(tree.root_id, bit_index=2049)
            with pytest.raises(PageCorruptionError):
                tree.read_node(tree.root_id)
            assert tree.stats.corrupt_reads >= 1
        finally:
            # Heal the stored image before handing the tree back.
            wrapper.flip_bit(tree.root_id, bit_index=2049)
            unwrap_tree_store(tree)
        assert tree.read_node(tree.root_id) is not None


# ---------------------------------------------------------------------------
# Byte-identical answers under injected faults (acceptance)
# ---------------------------------------------------------------------------

class TestFaultedQueriesMatchBaseline:
    @pytest.mark.parametrize("algorithm", CORE_ALGORITHMS)
    def test_transient_schedule_identical_results(
        self, tree_pair, algorithm
    ):
        tree_p, tree_q = tree_pair
        baseline = run_cpq(tree_p, tree_q, 10, algorithm)
        wrapper_p = wrap_tree_store(
            tree_p, FaultPlan(seed=7, p_transient=0.05),
            sleep=lambda _s: None,
        )
        wrapper_q = wrap_tree_store(
            tree_q, FaultPlan(seed=8, p_transient=0.05),
            sleep=lambda _s: None,
        )
        try:
            faulted = run_cpq(tree_p, tree_q, 10, algorithm)
            retries = (tree_p.stats.read_retries
                       + tree_q.stats.read_retries)
        finally:
            unwrap_tree_store(tree_p)
            unwrap_tree_store(tree_q)
        assert faulted.pairs == baseline.pairs
        injected = (wrapper_p.faults.transient_raised
                    + wrapper_q.faults.transient_raised)
        assert injected > 0, "schedule injected nothing; test is vacuous"
        # Every injected transient surfaced as a counted retry.
        assert retries == injected

    def test_mixed_schedule_identical_results(self, tree_pair):
        tree_p, tree_q = tree_pair
        baseline = run_cpq(tree_p, tree_q, 5, "heap")
        plan = SCHEDULES["mixed"]
        wrap_tree_store(tree_p, plan, sleep=lambda _s: None)
        wrap_tree_store(tree_q, plan, sleep=lambda _s: None)
        try:
            faulted = run_cpq(tree_p, tree_q, 5, "heap")
        finally:
            unwrap_tree_store(tree_p)
            unwrap_tree_store(tree_q)
        assert faulted.pairs == baseline.pairs


# ---------------------------------------------------------------------------
# Parallel executor degradation
# ---------------------------------------------------------------------------

class TestParallelFallback:
    def test_worker_failure_falls_back_to_serial(
        self, tree_pair, monkeypatch
    ):
        tree_p, tree_q = tree_pair
        baseline = run_cpq(tree_p, tree_q, 6, "heap")

        def explode(*_args, **_kwargs):
            raise RuntimeError("worker pool down")

        monkeypatch.setattr(
            core_api, "parallel_k_closest_pairs", explode
        )
        result = k_closest_pairs(
            tree_p, tree_q,
            request=core_api.CPQRequest(k=6, algorithm="heap", workers=4),
        )
        assert result.pairs == baseline.pairs
        fallback = result.stats.extra["parallel_fallback"]
        assert "RuntimeError" in fallback["error"]
        assert fallback["workers_requested"] == 4

    def test_corruption_is_not_degraded_around(
        self, tree_pair, monkeypatch
    ):
        tree_p, tree_q = tree_pair

        def corrupt(*_args, **_kwargs):
            raise PageCorruptionError("bad page", page_id=1)

        monkeypatch.setattr(
            core_api, "parallel_k_closest_pairs", corrupt
        )
        with pytest.raises(PageCorruptionError):
            k_closest_pairs(
                tree_p, tree_q,
                request=core_api.CPQRequest(k=2, algorithm="heap",
                                            workers=2),
            )


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def make(self, threshold=3, timeout=10.0):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=threshold, reset_timeout_s=timeout,
            clock=lambda: now[0],
        )
        return breaker, now

    def test_opens_after_consecutive_failures(self):
        breaker, __ = self.make(threshold=3)
        for __ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 1
        assert not breaker.allow()

    def test_success_resets_failure_run(self):
        breaker, __ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_single_probe(self):
        breaker, now = self.make(threshold=1, timeout=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        now[0] = 10.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()          # the probe
        assert not breaker.allow()      # everyone else waits
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        breaker, now = self.make(threshold=1, timeout=5.0)
        breaker.record_failure()
        now[0] = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 2
        now[0] = 9.0
        assert not breaker.allow()
        now[0] = 10.0
        assert breaker.allow()

    def test_success_while_open_ignored(self):
        # A slow query admitted before the breaker opened must not
        # re-close it mid-storm, bypassing the reset timeout.
        breaker, now = self.make(threshold=1, timeout=10.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        breaker.record_success()
        assert breaker.state == OPEN
        assert not breaker.allow()
        now[0] = 10.0
        assert breaker.allow()          # probe only after the timeout

    def test_release_probe_frees_slot(self):
        breaker, now = self.make(threshold=1, timeout=10.0)
        breaker.record_failure()
        now[0] = 10.0
        assert breaker.allow()          # the probe
        assert not breaker.allow()
        # Probe died of a non-storage error: no verdict, slot returned.
        breaker.release_probe()
        assert breaker.state == HALF_OPEN
        assert breaker.allow()          # a new probe may proceed

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=0.0)


# ---------------------------------------------------------------------------
# Service resilience: shedding, breaker integration, stale serving
# ---------------------------------------------------------------------------

class TestServiceResilience:
    def open_breaker(self, service, tree, pair_name="pair"):
        """Drive the pair's breaker open with unretryable faults."""
        wrapper = wrap_tree_store(tree, FaultPlan(), sleep=lambda _s: None)
        wrapper.fail_reads = {pid: 10 ** 6 for pid in range(10 ** 4)}
        tree.file.buffer.retry_policy = NO_SLEEP
        threshold = service._pairs[pair_name].breaker.failure_threshold
        for __ in range(threshold):
            service.execute(CPQRequest(pair=pair_name, k=2,
                                       use_cache=False))
        return wrapper

    def test_storage_faults_open_breaker_and_count(self, tree_pair):
        tree_p, tree_q = tree_pair
        service = QueryService(
            workers=1,
            breaker_factory=lambda: CircuitBreaker(failure_threshold=2),
        )
        service.register_pair("pair", tree_p, tree_q)
        try:
            self.open_breaker(service, tree_p)
            pair = service._pairs["pair"]
            assert pair.breaker.state == OPEN
            snapshot = service.snapshot()
            faults = snapshot["resilience"]["storage_faults"]
            assert faults.get("TransientIOError", 0) >= 2
        finally:
            unwrap_tree_store(tree_p)
            service.close()

    def test_open_breaker_serves_stale_or_unavailable(self, tree_pair):
        tree_p, tree_q = tree_pair
        service = QueryService(
            workers=1,
            breaker_factory=lambda: CircuitBreaker(failure_threshold=2),
        )
        service.register_pair("pair", tree_p, tree_q)
        try:
            good = service.execute(CPQRequest(pair="pair", k=3))
            assert good.status == STATUS_OK and not good.stale
            self.open_breaker(service, tree_p)
            # Drop the fresh entries, as a generation bump would; the
            # last-known-good stock must survive.
            service.cache.invalidate_pair("pair")
            stale = service.execute(CPQRequest(pair="pair", k=3))
            assert stale.status == STATUS_OK
            assert stale.stale and stale.cached
            assert stale.result.pairs == good.result.pairs
            # No stale stock for parameters never answered -> refuse.
            missing = service.execute(CPQRequest(pair="pair", k=31))
            assert missing.status == STATUS_UNAVAILABLE
            snapshot = service.snapshot()
            assert snapshot["resilience"]["stale_served"] == 1
            assert snapshot["resilience"]["breaker_rejections"] >= 2
        finally:
            unwrap_tree_store(tree_p)
            service.close()

    def test_nonstorage_probe_failure_does_not_wedge_breaker(
        self, tree_pair
    ):
        # Regression: a half-open probe that dies of a request-shaped
        # error (or deadline expiry) must release the probe slot.
        # Before the fix the breaker stayed half-open with the slot
        # taken forever, rejecting every future request.
        tree_p, tree_q = tree_pair
        now = [0.0]
        service = QueryService(
            workers=1,
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=2, reset_timeout_s=5.0,
                clock=lambda: now[0],
            ),
        )
        service.register_pair("pair", tree_p, tree_q)
        try:
            self.open_breaker(service, tree_p)
            assert service._pairs["pair"].breaker.state == OPEN
            unwrap_tree_store(tree_p)   # storage is healthy again
            now[0] = 5.0                # reset timeout elapsed
            # The probe request fails for request-shaped reasons that
            # say nothing about storage health.
            probe = service.execute(CPQRequest(
                pair="pair", k=2, algorithm="bogus", use_cache=False,
            ))
            assert probe.status == STATUS_ERROR
            # The slot was released: the next request probes, succeeds,
            # and closes the breaker.
            good = service.execute(CPQRequest(pair="pair", k=2,
                                              use_cache=False))
            assert good.status == STATUS_OK
            assert service._pairs["pair"].breaker.state == CLOSED
        finally:
            unwrap_tree_store(tree_p)
            service.close()

    def test_reregistering_pair_drops_stale_stock(self, tree_pair):
        # Regression: re-registering a name with different trees must
        # drop the generation-less last-known-good stock, or breaker-
        # open degraded serving could answer from the *old* trees.
        tree_p, tree_q = tree_pair
        service = QueryService(workers=1)
        service.register_pair("pair", tree_p, tree_q)
        try:
            request = CPQRequest(pair="pair", k=3)
            assert service.execute(request).status == STATUS_OK
            found, __ = service.cache.get_stale(
                "pair", request.cache_params()
            )
            assert found
            other = bulk_load([(float(i), float(i)) for i in range(40)])
            service.register_pair("pair", other, other)
            found, __ = service.cache.get_stale(
                "pair", request.cache_params()
            )
            assert not found
        finally:
            service.close()

    def test_shedding_at_queue_threshold(self, tree_pair):
        tree_p, tree_q = tree_pair
        release = threading.Event()
        service = QueryService(workers=1, shed_threshold=1)
        service.register_pair("pair", tree_p, tree_q)
        # Block the single worker deterministically: every read of
        # tree_p waits on the release event via a latency fault.
        wrapper = wrap_tree_store(
            tree_p, FaultPlan(p_latency=1.0),
            sleep=lambda _s: release.wait(10.0),
        )
        try:
            blocker = service.submit(CPQRequest(pair="pair", k=2,
                                                use_cache=False))
            # Wait until the single worker has dequeued the blocker
            # (and is parked inside the faulted read), so the next
            # submit is the only queued entry.
            deadline = time.monotonic() + 5.0
            while service._queue.qsize() > 0:
                assert time.monotonic() < deadline, "worker never started"
                time.sleep(0.005)
            queued = service.submit(CPQRequest(pair="pair", k=3,
                                               use_cache=False))
            # Worker busy, one request queued: depth >= threshold.
            shed = service.submit(CPQRequest(pair="pair", k=4,
                                             use_cache=False))
            response = shed.result(timeout=1.0)
            assert response.status == STATUS_OVERLOADED
            assert "overloaded" in response.error
            release.set()
            assert blocker.result(timeout=30.0).status == STATUS_OK
            assert queued.result(timeout=30.0).status == STATUS_OK
            assert service.snapshot()["resilience"]["shed"] == 1
        finally:
            release.set()
            unwrap_tree_store(tree_p)
            service.close()

    def test_shed_threshold_validation(self):
        with pytest.raises(ValueError):
            QueryService(shed_threshold=0)

    def test_overload_error_is_typed(self):
        error = ServiceOverloadError(9, 8)
        assert error.queue_depth == 9
        assert error.threshold == 8
        assert "overloaded" in str(error)

    def test_read_retries_surface_in_response_and_metrics(
        self, tree_pair
    ):
        tree_p, tree_q = tree_pair
        service = QueryService(workers=1)
        service.register_pair("pair", tree_p, tree_q)
        wrapper = wrap_tree_store(
            tree_p, FaultPlan(seed=3, p_transient=0.2),
            sleep=lambda _s: None,
        )
        tree_p.file.buffer.retry_policy = NO_SLEEP
        try:
            response = service.execute(
                CPQRequest(pair="pair", k=5, use_cache=False)
            )
            assert response.status == STATUS_OK
            assert response.read_retries > 0
            assert (service.snapshot()["io"]["read_retries"]
                    == response.read_retries)
        finally:
            unwrap_tree_store(tree_p)
            service.close()

    def test_parallel_fallback_counted_by_service(
        self, tree_pair, monkeypatch
    ):
        tree_p, tree_q = tree_pair

        def explode(*_args, **_kwargs):
            raise RuntimeError("pool down")

        monkeypatch.setattr(
            core_api, "parallel_k_closest_pairs", explode
        )
        service = QueryService(workers=1, max_query_workers=4)
        service.register_pair("pair", tree_p, tree_q)
        try:
            response = service.execute(
                CPQRequest(pair="pair", k=4, algorithm="heap",
                           workers=4, use_cache=False)
            )
            assert response.status == STATUS_OK
            snapshot = service.snapshot()
            assert snapshot["resilience"]["parallel_fallbacks"] == 1
        finally:
            service.close()
