"""Wire-level fault injection and the coordinator's self-healing.

Two layers under test.  The injector itself
(:mod:`repro.net.faults`): plans validate, decisions are
seed-deterministic, damaged frames are *always* detectable (CRC /
length), streak caps make every bundled schedule survivable.  And the
coordinator's response: under every named schedule the sharded answer
stays byte-identical to serial; stalls trigger hedges that can win;
kills end in supervisor respawns; duplicated replies dedupe instead of
double-merging; a hot reload moves live shards onto a newer pinned
generation without restart.  The no-fault shard contract lives in
``tests/test_shard.py``.
"""

import random
import threading
import time

import pytest

from repro.core.api import CPQRequest, k_closest_pairs
from repro.net.faults import (
    SCHEDULES,
    FaultyClientTransport,
    FaultyShardTransport,
    NetFaultPlan,
    NetFaultStats,
    ShardTransport,
    corrupt_frame,
    truncate_frame,
)
from repro.net.frames import FrameError, decode_frame, encode_frame
from repro.net.retry import HedgePolicy, RetryPolicy
from repro.net.shard import ShardManager, tree_spec
from repro.rtree.bulk import bulk_load
from repro.storage.paged_file import PagedFile
from repro.storage.store import FilePageStore

ALGORITHMS = ("naive", "exh", "sim", "std", "heap")

#: Tight knobs so injected losses are noticed in test time, not the
#: 30 s production defaults.
FAST = dict(
    shard_timeout_s=20.0,
    attempt_timeout_s=0.4,
    retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.01,
                             max_delay_s=0.05),
    probe_interval_s=0.1,
)


def _file_tree(tmp_path, name, points):
    store = FilePageStore(str(tmp_path / name), page_size=1024)
    return bulk_load(points, file=PagedFile(store, page_size=1024))


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("net-faults")
    rng = random.Random(21)
    tree_p = _file_tree(
        tmp, "p.pages",
        [(rng.random(), rng.random()) for __ in range(200)],
    )
    tree_q = _file_tree(
        tmp, "q.pages",
        [(rng.random(), rng.random()) for __ in range(200)],
    )
    serial = {
        algorithm: k_closest_pairs(
            tree_p, tree_q,
            request=CPQRequest(k=10, algorithm=algorithm),
        )
        for algorithm in ALGORITHMS
    }
    return tree_spec(tree_p), tree_spec(tree_q), serial


class _FakeShard:
    """Just enough shard surface for transport unit tests."""

    def __init__(self, shard_id=0):
        self.shard_id = shard_id
        self.process = None
        self.inbox = self

    def put(self, message):
        pass


class TestPlans:
    @pytest.mark.parametrize("field", [
        "p_drop", "p_stall", "p_truncate", "p_corrupt", "p_kill",
    ])
    def test_probabilities_validated(self, field):
        with pytest.raises(ValueError, match=field):
            NetFaultPlan(**{field: 1.5})

    def test_shape_bounds_validated(self):
        with pytest.raises(ValueError, match="stall_s"):
            NetFaultPlan(stall_s=-1.0)
        with pytest.raises(ValueError, match="max_consecutive"):
            NetFaultPlan(max_consecutive=0)
        with pytest.raises(ValueError, match="max_kills"):
            NetFaultPlan(max_kills=-1)

    def test_bundled_schedules_are_survivable(self):
        # Every schedule's worst loss streak fits inside the default
        # retry budget, and kills are capped -- the properties the
        # module docstring promises.
        policy = RetryPolicy()
        for name, plan in SCHEDULES.items():
            assert plan.max_consecutive < policy.max_attempts, name
            assert plan.max_kills <= 3, name

    def test_stats_tally(self):
        stats = NetFaultStats(drops=2, stalls=1, kills=1)
        assert stats.injected == 4
        assert stats.as_dict()["injected"] == 4


class TestDeterminism:
    def test_same_seed_same_faults(self):
        plan = SCHEDULES["mixed"]
        runs = []
        for __ in range(2):
            transport = FaultyShardTransport(plan)
            shard = _FakeShard()
            for i in range(40):
                transport.send(shard, ("query", i, 0, i, None, [], None))
            for i in range(40):
                transport.deliver(
                    ("reply", i, 0, i, 0, encode_frame({"i": i})),
                    lambda message: None,
                )
            transport.close()
            runs.append(transport.faults.as_dict())
        assert runs[0] == runs[1]

    def test_different_seed_different_faults(self):
        import dataclasses

        counts = set()
        for seed in range(4):
            plan = dataclasses.replace(SCHEDULES["mixed"], seed=seed)
            transport = FaultyShardTransport(plan)
            shard = _FakeShard()
            for i in range(60):
                transport.send(shard, ("query", i, 0, i, None, [], None))
            transport.close()
            counts.add(transport.faults.injected)
        assert len(counts) > 1


class TestFrameDamage:
    def test_round_trip(self):
        payload = {"ok": True, "pairs": [(1.0, (0.5, 0.5))]}
        assert decode_frame(encode_frame(payload)) == payload

    @pytest.mark.parametrize("damage", [truncate_frame, corrupt_frame])
    def test_damage_always_detected(self, damage):
        rng = random.Random(5)
        frame = encode_frame({"ok": True, "data": list(range(50))})
        for __ in range(200):
            with pytest.raises(FrameError):
                decode_frame(damage(frame, rng))


class TestScheduleParity:
    @pytest.mark.parametrize("schedule", sorted(SCHEDULES))
    def test_exact_answers_under_every_schedule(self, corpus, schedule):
        spec_p, spec_q, serial = corpus
        transport = FaultyShardTransport(SCHEDULES[schedule])
        with ShardManager(spec_p, spec_q, shards=2,
                          transport=transport, seed=3,
                          **FAST) as manager:
            for algorithm in ALGORITHMS:
                result = manager.execute(
                    CPQRequest(k=10, algorithm=algorithm)
                )
                assert result.pairs == serial[algorithm].pairs, (
                    f"{schedule}/{algorithm} diverged"
                )
                assert result.stats.extra["net"]["partial"] is False


class _StallShardZero(ShardTransport):
    """Deterministic hedging bait: shard 0's jobs arrive very late."""

    def __init__(self, stall_s=0.6):
        self.stall_s = stall_s

    def send(self, shard, message) -> None:
        if shard.shard_id == 0:
            inbox = shard.inbox
            timer = threading.Timer(
                self.stall_s, lambda: inbox.put(message)
            )
            timer.daemon = True
            timer.start()
        else:
            shard.inbox.put(message)


class _EchoTwice(ShardTransport):
    """Every reply arrives twice: the dedupe layer's nightmare."""

    def deliver(self, message, deliver) -> None:
        deliver(message)
        deliver(message)


class TestSelfHealing:
    def test_stalled_shard_loses_to_hedge(self, corpus):
        spec_p, spec_q, serial = corpus
        with ShardManager(
            spec_p, spec_q, shards=2,
            transport=_StallShardZero(stall_s=0.6),
            shard_timeout_s=20.0, attempt_timeout_s=5.0,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.01),
            hedge_policy=HedgePolicy(floor_s=0.05, min_samples=64),
        ) as manager:
            result = manager.execute(CPQRequest(k=10, algorithm="heap"))
            assert result.pairs == serial["heap"].pairs
            stats = manager.net_stats()
            # Shard 0's chunk sat stalled past the 50 ms floor, so a
            # hedge went to shard 1 and its answer merged first.
            assert stats["hedges"] >= 1
            assert stats["hedge_wins"] >= 1

    def test_killed_shard_respawns_and_recovers(self, corpus):
        import dataclasses

        spec_p, spec_q, serial = corpus
        plan = dataclasses.replace(
            SCHEDULES["kill"], p_kill=1.0, max_kills=1, seed=1
        )
        with ShardManager(spec_p, spec_q, shards=2,
                          transport=FaultyShardTransport(plan),
                          **FAST) as manager:
            result = manager.execute(CPQRequest(k=10, algorithm="heap"))
            assert result.pairs == serial["heap"].pairs
            deadline = time.monotonic() + 5.0
            while (manager.net_stats()["respawns"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            stats = manager.net_stats()
            assert stats["respawns"] >= 1
            assert all(row["alive"] for row in manager.health())

    def test_duplicate_replies_dedupe(self, corpus):
        spec_p, spec_q, serial = corpus
        with ShardManager(spec_p, spec_q, shards=2,
                          transport=_EchoTwice()) as manager:
            for algorithm in ALGORITHMS:
                result = manager.execute(
                    CPQRequest(k=10, algorithm=algorithm)
                )
                # Byte-identical despite every payload arriving twice:
                # one offer per chunk, the echo dropped, never merged.
                assert result.pairs == serial[algorithm].pairs
            assert manager.net_stats()["dedup_dropped"] >= 1

    def test_hot_reload_onto_newer_generation(self, tmp_path):
        rng = random.Random(9)
        tree_p = _file_tree(
            tmp_path, "p.pages",
            [(rng.random(), rng.random()) for __ in range(150)],
        )
        tree_q = _file_tree(
            tmp_path, "q.pages",
            [(rng.random(), rng.random()) for __ in range(150)],
        )
        tree_p.enable_live_mutation()
        spec_q = tree_spec(tree_q)
        spec0 = tree_spec(tree_p)
        with ShardManager(spec0, spec_q, shards=2,
                          probe_interval_s=0.1) as manager:
            before = manager.execute(CPQRequest(k=8, algorithm="heap"))
            assert before.pairs == k_closest_pairs(
                tree_p, tree_q, request=CPQRequest(k=8, algorithm="heap")
            ).pairs

            pin = tree_p.pin()  # hold the served generation alive
            with tree_p.batch():
                for i in range(40):
                    tree_p.insert((rng.random(), rng.random()), 150 + i)
            spec1 = tree_spec(tree_p)
            assert spec1.generation > spec0.generation

            report = manager.reload(spec1, spec_q)
            tree_p.release(pin)
            assert report["generation_p"] == spec1.generation
            # Live shards reopened in place; nobody needed a restart.
            assert sorted(report["acked"] + report["respawned"]) == [0, 1]
            after = manager.execute(CPQRequest(k=8, algorithm="heap"))
            assert after.pairs == k_closest_pairs(
                tree_p, tree_q, request=CPQRequest(k=8, algorithm="heap")
            ).pairs
            assert manager.net_stats()["reloads"] == 1
            assert manager.net_stats()["generation_p"] == spec1.generation


class TestClientTransport:
    def test_drop_raises_then_clears(self):
        faults = FaultyClientTransport(
            NetFaultPlan(p_drop=1.0, max_consecutive=1)
        )
        with pytest.raises(ConnectionError):
            faults.before_send()
        # Streak cap reached: the retry goes through.
        faults.before_send()
        assert faults.faults.drops == 1

    def test_stall_sleeps(self):
        napped = []
        faults = FaultyClientTransport(
            NetFaultPlan(p_stall=1.0, stall_s=0.25),
            sleep=napped.append,
        )
        faults.before_send()
        assert napped == [0.25]

    def test_damaged_body_is_not_json(self):
        import json

        faults = FaultyClientTransport(NetFaultPlan(p_truncate=1.0))
        body = json.dumps({"status": "ok", "pairs": [1, 2, 3]}).encode()
        for __ in range(20):
            damaged = faults.transform_response(body)
            if damaged != body:
                break
        with pytest.raises(json.JSONDecodeError):
            json.loads(damaged)
