"""Tests for the Hjaltason & Samet incremental distance join."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.incremental import incremental_distance_join, k_distance_join
from repro.incremental.distance_join import POLICIES, TIE_POLICIES
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree
from repro.storage.stats import QueryStats

from tests.conftest import brute_force_pairs

coord = st.floats(min_value=0, max_value=50, allow_nan=False)
point_lists = st.lists(st.tuples(coord, coord), min_size=1, max_size=30)


class TestCorrectness:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("tie_policy", TIE_POLICIES)
    def test_matches_brute_force(self, policy, tie_policy):
        rng = random.Random(23)
        pts_p = [(rng.random(), rng.random()) for __ in range(150)]
        pts_q = [(rng.uniform(0.3, 1.3), rng.random()) for __ in range(140)]
        tree_p = bulk_load(pts_p)
        tree_q = bulk_load(pts_q)
        result = k_distance_join(
            tree_p, tree_q, k=25, policy=policy, tie_policy=tie_policy
        )
        expected = brute_force_pairs(pts_p, pts_q, 25)
        assert result.distances() == pytest.approx(expected, abs=1e-9)

    @given(point_lists, point_lists, st.integers(1, 8))
    @settings(max_examples=15)
    def test_random_sets(self, pts_p, pts_q, k):
        k = min(k, len(pts_p) * len(pts_q))
        result = k_distance_join(
            bulk_load(pts_p), bulk_load(pts_q), k=k
        )
        expected = brute_force_pairs(pts_p, pts_q, k)
        assert result.distances() == pytest.approx(expected, abs=1e-9)

    def test_agrees_with_non_incremental(self):
        from repro.core import CPQRequest, k_closest_pairs

        rng = random.Random(8)
        pts_p = [(rng.random(), rng.random()) for __ in range(200)]
        pts_q = [(rng.random(), rng.random()) for __ in range(200)]
        tree_p = bulk_load(pts_p)
        tree_q = bulk_load(pts_q)
        ours = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=30, algorithm="heap"),
        )
        theirs = k_distance_join(tree_p, tree_q, k=30, policy="sml")
        assert theirs.distances() == pytest.approx(
            ours.distances(), abs=1e-9
        )


class TestIncrementality:
    def test_ascending_order(self):
        rng = random.Random(4)
        pts = [(rng.random(), rng.random()) for __ in range(120)]
        it = incremental_distance_join(bulk_load(pts), bulk_load(pts))
        previous = -1.0
        for __, pair in zip(range(200), it):
            assert pair.distance >= previous
            previous = pair.distance

    def test_lazy_consumption_costs_less(self):
        rng = random.Random(16)
        pts_p = [(rng.random(), rng.random()) for __ in range(800)]
        pts_q = [(rng.random(), rng.random()) for __ in range(800)]
        tree_p = bulk_load(pts_p)
        tree_q = bulk_load(pts_q)

        tree_p.file.reset_for_query()
        tree_q.file.reset_for_query()
        few_stats = QueryStats()
        it = incremental_distance_join(tree_p, tree_q, stats=few_stats)
        for __ in range(3):
            next(it)
        few = few_stats.disk_accesses

        many = k_distance_join(tree_p, tree_q, k=2000).stats.disk_accesses
        assert 0 < few < many

    def test_exhausts_all_pairs_without_bound(self):
        pts_p = [(0.0, 0.0), (1.0, 0.0)]
        pts_q = [(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)]
        pairs = list(
            incremental_distance_join(bulk_load(pts_p), bulk_load(pts_q))
        )
        assert len(pairs) == 6

    def test_k_bound_stops_early(self):
        pts = [(float(i), 0.0) for i in range(10)]
        pairs = list(
            incremental_distance_join(
                bulk_load(pts), bulk_load(pts), k_bound=5
            )
        )
        assert len(pairs) == 5


class TestValidation:
    def test_unknown_policy(self):
        tree = bulk_load([(0.0, 0.0)])
        with pytest.raises(ValueError, match="policy"):
            list(incremental_distance_join(tree, tree, policy="zigzag"))

    def test_unknown_tie_policy(self):
        tree = bulk_load([(0.0, 0.0)])
        with pytest.raises(ValueError, match="tie policy"):
            list(
                incremental_distance_join(tree, tree, tie_policy="random")
            )

    def test_bad_k_bound(self):
        tree = bulk_load([(0.0, 0.0)])
        with pytest.raises(ValueError, match="k_bound"):
            list(incremental_distance_join(tree, tree, k_bound=0))

    def test_bad_k(self):
        tree = bulk_load([(0.0, 0.0)])
        with pytest.raises(ValueError, match="k must be"):
            k_distance_join(tree, tree, k=0)

    def test_empty_tree_yields_nothing(self):
        empty = RTree()
        other = bulk_load([(0.0, 0.0)])
        assert list(incremental_distance_join(empty, other)) == []
        assert k_distance_join(empty, other, k=3).pairs == []


class TestQueueBehaviour:
    def test_queue_grows_beyond_result_size(self):
        # Section 3.9: the incremental queue holds object pairs too,
        # so it dwarfs the K results and the HEAP algorithm's queue.
        rng = random.Random(6)
        pts = [(rng.random(), rng.random()) for __ in range(600)]
        tree_p = bulk_load(pts)
        tree_q = bulk_load([(x + 1e-6, y) for x, y in pts])
        result = k_distance_join(tree_p, tree_q, k=10, policy="sml")
        assert result.stats.max_queue_size > 10
        assert result.stats.queue_inserts >= result.stats.max_queue_size

    def test_stats_collected_through_iterator(self):
        rng = random.Random(7)
        pts = [(rng.random(), rng.random()) for __ in range(200)]
        stats = QueryStats()
        tree_p = bulk_load(pts)
        tree_q = bulk_load(pts)
        tree_p.file.reset_for_query()
        tree_q.file.reset_for_query()
        list(
            incremental_distance_join(
                tree_p, tree_q, k_bound=5, stats=stats
            )
        )
        assert stats.disk_accesses > 0
        assert stats.node_pairs_visited > 0
