"""The shard tier's promise: byte-identical results, survivable shards.

:class:`~repro.net.shard.ShardManager` must return exactly the pairs
-- values AND tie order -- of the serial engine at every shard count,
for every shardable algorithm, including the adversarial
all-equal-distance data of ``tests/test_parallel.py`` where tie order
is the whole answer.  The failure half of the contract: lost shards
either recover exactly (coordinator re-execution) or are flagged
partial, breakers gate sick shards out of the scatter set, dead
processes respawn, and nothing here may leak a half-open probe slot.
"""

import random

import pytest

from repro.core.api import CPQRequest, k_closest_pairs
from repro.net.shard import ShardManager, TreeSpec, tree_spec
from repro.rtree.bulk import bulk_load
from repro.service import CPQRequest as ServiceCPQ, QueryService
from repro.service.breaker import CircuitBreaker
from repro.storage.paged_file import PagedFile
from repro.storage.store import FilePageStore

ALGORITHMS = ("naive", "exh", "sim", "std", "heap")


def _file_tree(tmp_path, name, points):
    store = FilePageStore(str(tmp_path / name), page_size=1024)
    return bulk_load(points, file=PagedFile(store, page_size=1024))


@pytest.fixture(scope="module")
def clustered(tmp_path_factory):
    """File-backed random trees plus serial answers per algorithm."""
    tmp = tmp_path_factory.mktemp("shard-clustered")
    rng = random.Random(7)
    tree_p = _file_tree(
        tmp, "p.pages",
        [(rng.random(), rng.random()) for __ in range(250)],
    )
    tree_q = _file_tree(
        tmp, "q.pages",
        [(rng.random(), rng.random()) for __ in range(250)],
    )
    serial = {
        algorithm: k_closest_pairs(
            tree_p, tree_q,
            request=CPQRequest(k=10, algorithm=algorithm),
        )
        for algorithm in ALGORITHMS
    }
    return tree_spec(tree_p), tree_spec(tree_q), serial


@pytest.fixture(scope="module")
def adversarial(tmp_path_factory):
    """Every candidate pair at distance 1.0: the all-equal dataset of
    ``tests/test_parallel.py``, persisted so shards can reopen it."""
    tmp = tmp_path_factory.mktemp("shard-ties")
    tree_p = _file_tree(tmp, "p.pages", [(0.0, 0.0)] * 60)
    tree_q = _file_tree(tmp, "q.pages", [(1.0, 0.0)] * 60)
    serial = {
        algorithm: k_closest_pairs(
            tree_p, tree_q,
            request=CPQRequest(k=25, algorithm=algorithm),
        )
        for algorithm in ALGORITHMS
    }
    return tree_spec(tree_p), tree_spec(tree_q), serial


class TestShardParity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_identical_to_serial(self, clustered, shards):
        spec_p, spec_q, serial = clustered
        with ShardManager(spec_p, spec_q, shards=shards) as manager:
            for algorithm in ALGORITHMS:
                sharded = manager.execute(
                    CPQRequest(k=10, algorithm=algorithm)
                )
                # Identical pairs in identical order, per algorithm.
                assert sharded.pairs == serial[algorithm].pairs
                net = sharded.stats.extra["net"]
                assert net["shards"] == shards
                assert net["failed_shards"] == []
                assert net["partial"] is False

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_all_equal_distance_ties(self, adversarial, shards):
        spec_p, spec_q, serial = adversarial
        with ShardManager(spec_p, spec_q, shards=shards) as manager:
            for algorithm in ALGORITHMS:
                sharded = manager.execute(
                    CPQRequest(k=25, algorithm=algorithm)
                )
                assert sharded.distances() == [1.0] * 25
                # Tie order is the whole answer here.
                assert sharded.pairs == serial[algorithm].pairs

    def test_shard_io_accounted(self, clustered):
        spec_p, spec_q, serial = clustered
        with ShardManager(spec_p, spec_q, shards=2) as manager:
            result = manager.execute(CPQRequest(k=10, algorithm="heap"))
            net = result.stats.extra["net"]
            assert net["tasks"] > 0
            assert net["shard_io"]["disk_reads"] > 0


class TestFailureSemantics:
    def _slow_specs(self, clustered):
        """Shard-side reopen specs in the disk-bound regime: cold
        buffers plus per-miss latency, so shard jobs reliably outlast
        a sub-poll gather timeout."""
        spec_p, spec_q, __ = clustered
        slow_p = TreeSpec(spec_p.path, spec_p.page_size, spec_p.metadata,
                          buffer_capacity=0, read_latency=0.02)
        slow_q = TreeSpec(spec_q.path, spec_q.page_size, spec_q.metadata,
                          buffer_capacity=0, read_latency=0.02)
        return slow_p, slow_q

    def test_timeout_recovers_exactly(self, clustered):
        __, __, serial = clustered
        slow_p, slow_q = self._slow_specs(clustered)
        with ShardManager(slow_p, slow_q, shards=2,
                          shard_timeout_s=0.0) as manager:
            result = manager.execute(CPQRequest(k=10, algorithm="heap"))
            net = result.stats.extra["net"]
            assert net["failed_shards"] == [0, 1]
            assert net["recovered_chunks"] == 2
            assert net["partial"] is False
            # Recovery is exact: coordinator re-ran the lost chunks.
            assert result.pairs == serial["heap"].pairs
            health = manager.health()
            assert all(entry["failures"] >= 1 for entry in health)

    def test_timeout_partial_mode_flags(self, clustered):
        slow_p, slow_q = self._slow_specs(clustered)
        with ShardManager(slow_p, slow_q, shards=2, shard_timeout_s=0.0,
                          on_failure="partial") as manager:
            result = manager.execute(CPQRequest(k=10, algorithm="heap"))
            net = result.stats.extra["net"]
            assert net["partial"] is True
            assert net["failed_shards"] == [0, 1]
            assert net["recovered_chunks"] == 0

    def test_dead_shard_respawns(self, clustered):
        spec_p, spec_q, serial = clustered
        with ShardManager(spec_p, spec_q, shards=2) as manager:
            victim = manager._shards[0]
            victim.process.terminate()
            victim.process.join(5.0)
            assert not victim.alive
            result = manager.execute(CPQRequest(k=10, algorithm="std"))
            assert result.pairs == serial["std"].pairs
            assert result.stats.extra["net"]["failed_shards"] == []
            assert all(e["alive"] for e in manager.health())

    def test_open_breakers_fall_back_locally(self, clustered):
        spec_p, spec_q, serial = clustered
        factory = lambda: CircuitBreaker(  # noqa: E731
            failure_threshold=1, reset_timeout_s=3600.0
        )
        with ShardManager(spec_p, spec_q, shards=2,
                          breaker_factory=factory) as manager:
            for shard in manager._shards:
                shard.breaker.record_failure()
            assert all(e["breaker"] == "open" for e in manager.health())
            result = manager.execute(CPQRequest(k=10, algorithm="sim"))
            net = result.stats.extra["net"]
            assert net["shards"] == 0
            assert net["local_fallback"] is True
            # Exact answer, no shard involved at all.
            assert result.pairs == serial["sim"].pairs

    def test_requires_file_backed_trees(self):
        tree = bulk_load([(0.0, 0.0), (1.0, 1.0)])
        with pytest.raises(ValueError, match="file-backed"):
            tree_spec(tree)

    def test_rejects_unshardable_algorithm(self, clustered):
        spec_p, spec_q, __ = clustered
        with ShardManager(spec_p, spec_q, shards=1) as manager:
            with pytest.raises(ValueError, match="not shardable"):
                manager.execute(CPQRequest(k=1, algorithm="self"))

    def test_validates_construction(self, clustered):
        spec_p, spec_q, __ = clustered
        with pytest.raises(ValueError, match="shards"):
            ShardManager(spec_p, spec_q, shards=0)
        with pytest.raises(ValueError, match="on_failure"):
            ShardManager(spec_p, spec_q, on_failure="retry")


class TestServiceIntegration:
    def test_executor_declines_other_pairs_and_algorithms(self, clustered):
        spec_p, spec_q, __ = clustered
        with ShardManager(spec_p, spec_q, shards=1,
                          pair="mine") as manager:
            executor = manager.service_executor()
            request = CPQRequest(k=1, algorithm="heap")
            assert executor("other", None, None, request,
                            None, None) is None
            unshardable = CPQRequest(k=1, algorithm="self")
            assert executor("mine", None, None, unshardable,
                            None, None) is None

    def test_partial_response_through_service(self, clustered):
        """The partial flag travels: shard loss -> stats.extra ->
        QueryResponse.partial -> metrics -- and is never cached."""
        slow = TestFailureSemantics()._slow_specs(clustered)
        manager = ShardManager(slow[0], slow[1], shards=2,
                               shard_timeout_s=0.0,
                               on_failure="partial")
        service = QueryService(
            workers=1, cpq_executor=manager.service_executor()
        )
        try:
            service.register_pair(
                "default", manager.tree_p, manager.tree_q
            )
            request = ServiceCPQ(pair="default", k=5, algorithm="heap")
            first = service.execute(request)
            assert first.status == "ok"
            assert first.partial is True
            assert first.cached is False
            # Partial results must not be served from cache later.
            second = service.execute(request)
            assert second.cached is False
            resilience = service.metrics.snapshot()["resilience"]
            assert resilience["partial_responses"] == 2
        finally:
            service.close(drain=True)
            manager.close()
