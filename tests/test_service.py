"""Unit tests for the query service: planner, cache, metrics,
deadlines and admission control."""

from __future__ import annotations

import math
import threading
import time

import pytest

from repro.analysis.cost_model import TreeShape
from repro.core import k_closest_pairs
from repro.core.api import CPQRequest as CoreRequest
from repro.datasets.workspace import Workspace
from repro.rtree.bulk import bulk_load
from repro.service import (
    CPQRequest,
    KNNRequest,
    Planner,
    QueryService,
    RangeRequest,
    ResultCache,
    ServiceMetrics,
    STATUS_DEADLINE,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    cache_key,
)

UNIT = Workspace(0.0, 0.0, 1.0, 1.0)


def make_service(tree_p, tree_q, **kwargs):
    service = QueryService(**kwargs)
    service.register_pair("pair", tree_p, tree_q)
    return service


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------

class TestPlanner:
    def test_single_leaf_trees_use_exh(self):
        tiny = TreeShape.uniform(5, UNIT)
        decision = Planner().plan(tiny, tiny, buffer_pages=0)
        assert decision.algorithm == "exh"
        assert decision.height_p == decision.height_q == 1

    def test_zero_buffer_large_trees_use_heap(self):
        big = TreeShape.uniform(100_000, UNIT)
        decision = Planner().plan(big, big, buffer_pages=0)
        assert decision.algorithm == "heap"
        assert decision.estimated_accesses > 0

    def test_ample_buffer_switches_to_std(self):
        """Same trees, different buffer -> different algorithm."""
        big = TreeShape.uniform(100_000, UNIT)
        planner = Planner()
        scarce = planner.plan(big, big, buffer_pages=0)
        ample = planner.plan(
            big, big,
            buffer_pages=int(scarce.estimated_accesses) + 1,
        )
        assert scarce.algorithm == "heap"
        assert ample.algorithm == "std"

    def test_small_predicted_workload_uses_sim(self):
        small = TreeShape.uniform(50, UNIT)
        planner = Planner(sim_threshold=50.0)
        decision = planner.plan(small, small, buffer_pages=0)
        assert decision.algorithm == "sim"
        assert decision.estimated_accesses <= 50.0

    def test_height_changes_decision(self):
        """Different tree heights -> different algorithm choice."""
        planner = Planner()
        shallow = TreeShape.uniform(5, UNIT)
        deep = TreeShape.uniform(100_000, UNIT)
        assert planner.plan(shallow, shallow, 0).algorithm == "exh"
        assert planner.plan(deep, deep, 0).algorithm == "heap"

    def test_unshapeable_tree_falls_back_to_heap(self):
        decision = Planner().plan(None, TreeShape.uniform(50, UNIT), 0)
        assert decision.algorithm == "heap"
        assert math.isinf(decision.estimated_accesses)

    def test_k_raises_estimate(self):
        big = TreeShape.uniform(100_000, UNIT)
        planner = Planner()
        one = planner.plan(big, big, 0, k=1)
        many = planner.plan(big, big, 0, k=100)
        assert many.estimated_accesses > one.estimated_accesses

    def test_decision_serialises(self):
        decision = Planner().plan(
            TreeShape.uniform(1000, UNIT),
            TreeShape.uniform(1000, UNIT),
            buffer_pages=16,
        )
        as_dict = decision.as_dict()
        assert as_dict["algorithm"] == decision.algorithm
        assert as_dict["buffer_pages"] == 16


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_get_put_and_lru_eviction(self):
        cache = ResultCache(capacity=2)
        k1 = cache_key("a", 0, 0, ("cpq", 1, "auto"))
        k2 = cache_key("a", 0, 0, ("cpq", 2, "auto"))
        k3 = cache_key("a", 0, 0, ("cpq", 3, "auto"))
        cache.put(k1, "one")
        cache.put(k2, "two")
        assert cache.get(k1) == (True, "one")  # refreshes k1
        cache.put(k3, "three")  # evicts k2, the LRU entry
        assert cache.get(k2) == (False, None)
        assert cache.get(k1) == (True, "one")
        assert cache.get(k3) == (True, "three")

    def test_generation_in_key_prevents_stale_hits(self):
        cache = ResultCache(capacity=8)
        old = cache_key("a", 0, 0, ("cpq", 1, "auto"))
        cache.put(old, "stale")
        fresh = cache_key("a", 1, 0, ("cpq", 1, "auto"))
        assert cache.get(fresh) == (False, None)

    def test_invalidate_pair_drops_only_that_pair(self):
        cache = ResultCache(capacity=8)
        cache.put(cache_key("a", 0, 0, ("cpq", 1, "auto")), 1)
        cache.put(cache_key("a", 0, 0, ("cpq", 2, "auto")), 2)
        cache.put(cache_key("b", 0, 0, ("cpq", 1, "auto")), 3)
        assert cache.invalidate_pair("a") == 2
        assert len(cache) == 1
        assert cache.get(cache_key("b", 0, 0, ("cpq", 1, "auto")))[0]

    def test_invalidate_pair_stale_stock_opt_in(self):
        cache = ResultCache(capacity=8)
        params = ("cpq", 1, "auto")
        cache.put(cache_key("a", 0, 0, params), "va")
        cache.put(cache_key("b", 0, 0, params), "vb")
        # Generation-bump invalidation keeps the last-known-good stock.
        cache.invalidate_pair("a")
        assert cache.get_stale("a", params) == (True, "va")
        # Tree replacement drops it -- and only for that pair.
        cache.invalidate_pair("a", drop_stale=True)
        assert cache.get_stale("a", params) == (False, None)
        assert cache.get_stale("b", params) == (True, "vb")

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        key = cache_key("a", 0, 0, ("cpq", 1, "auto"))
        cache.put(key, "x")
        assert cache.get(key) == (False, None)
        assert len(cache) == 0


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_snapshot_schema_and_counts(self):
        metrics = ServiceMetrics()
        metrics.record_submitted()
        metrics.record_cache_miss()
        metrics.record_planner_decision("heap")
        metrics.record_planner_decision("heap")
        metrics.record_planner_decision("std")
        metrics.record_query("cpq", STATUS_OK, latency_ms=3.0,
                             disk_reads=10, buffer_hits=5)
        metrics.record_query("cpq", STATUS_OK, latency_ms=1.0,
                             cached=True)
        metrics.set_queue_depth(7)
        metrics.set_queue_depth(2)
        snap = metrics.snapshot(cache_size=4)
        assert snap["queries"]["submitted"] == 1
        assert snap["queries"]["by_status"][STATUS_OK] == 2
        assert snap["planner"] == {"heap": 2, "std": 1}
        assert snap["cache"] == {
            "hits": 1, "misses": 1, "hit_rate": 0.5, "size": 4,
        }
        assert snap["io"] == {
            "disk_reads": 10, "buffer_hits": 5, "read_retries": 0,
        }
        assert snap["latency_ms"]["count"] == 2
        assert snap["latency_ms"]["min"] == 1.0
        assert snap["latency_ms"]["max"] == 3.0
        assert snap["queue"] == {"depth": 2, "max_depth": 7}
        assert sum(snap["latency_ms"]["buckets"].values()) == 2

    def test_snapshot_is_json_serialisable(self):
        import json

        metrics = ServiceMetrics()
        metrics.record_query("knn", STATUS_ERROR, latency_ms=0.5)
        json.dumps(metrics.snapshot())

    def test_per_algorithm_latency_histograms(self):
        metrics = ServiceMetrics()
        metrics.record_query("cpq", STATUS_OK, latency_ms=2.0,
                             algorithm="heap")
        metrics.record_query("cpq", STATUS_OK, latency_ms=6.0,
                             algorithm="heap")
        metrics.record_query("cpq", STATUS_OK, latency_ms=1.0,
                             algorithm="std")
        metrics.record_query("knn", STATUS_OK, latency_ms=9.0)  # no algo
        by_algo = metrics.snapshot()["latency_ms"]["by_algorithm"]
        assert set(by_algo) == {"heap", "std"}
        heap = by_algo["heap"]
        assert heap["count"] == 2
        assert heap["min"] == 2.0
        assert heap["max"] == 6.0
        assert heap["mean"] == pytest.approx(4.0)
        assert sum(heap["buckets"].values()) == 2
        assert by_algo["std"]["count"] == 1

    def test_snapshot_with_reset_returns_pre_reset_view(self):
        metrics = ServiceMetrics()
        metrics.record_submitted()
        metrics.record_query("cpq", STATUS_OK, latency_ms=3.0,
                             algorithm="heap", disk_reads=4)
        before = metrics.snapshot(reset=True)
        assert before["queries"]["submitted"] == 1
        assert before["latency_ms"]["by_algorithm"]["heap"]["count"] == 1
        assert before["io"]["disk_reads"] == 4
        after = metrics.snapshot()
        assert after["queries"]["submitted"] == 0
        assert after["latency_ms"]["count"] == 0
        assert after["latency_ms"]["by_algorithm"] == {}
        assert after["io"]["disk_reads"] == 0

    def test_reset_is_snapshot_alias(self):
        metrics = ServiceMetrics()
        metrics.record_cache_miss()
        returned = metrics.reset()
        assert returned["cache"]["misses"] == 1
        assert metrics.snapshot()["cache"]["misses"] == 0

    def test_reset_survives_concurrent_recording(self):
        """No update may be lost or double-counted across resets: the
        total over all snapshots equals the number of recordings."""
        metrics = ServiceMetrics()
        stop = threading.Event()
        recorded = [0]

        def record():
            while not stop.is_set():
                metrics.record_query("cpq", STATUS_OK, latency_ms=1.0,
                                     algorithm="heap")
                recorded[0] += 1

        thread = threading.Thread(target=record)
        thread.start()
        harvested = 0
        for __ in range(50):
            harvested += metrics.snapshot(reset=True)["latency_ms"]["count"]
        stop.set()
        thread.join()
        harvested += metrics.snapshot(reset=True)["latency_ms"]["count"]
        assert harvested == recorded[0]


# ---------------------------------------------------------------------------
# Service behaviour
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def service_trees(medium_trees):
    return medium_trees


class TestService:
    def test_cpq_matches_direct_call(self, service_trees):
        __, __, tree_p, tree_q = service_trees
        with make_service(tree_p, tree_q, workers=2) as service:
            response = service.execute(CPQRequest(pair="pair", k=7))
            assert response.status == STATUS_OK
            assert response.algorithm in ("naive", "exh", "sim",
                                          "std", "heap")
            direct = k_closest_pairs(
                tree_p,
                tree_q,
                request=CoreRequest(k=7, algorithm="heap"),
            )
            assert response.result.distances() == pytest.approx(
                direct.distances()
            )

    def test_planner_decision_lands_in_metrics(self, service_trees):
        __, __, tree_p, tree_q = service_trees
        with make_service(tree_p, tree_q, workers=1) as service:
            response = service.execute(CPQRequest(pair="pair", k=2))
            decisions = service.metrics.planner_decisions
            assert decisions.get(response.algorithm, 0) >= 1
            assert response.plan is not None
            assert response.plan.algorithm == response.algorithm

    def test_explicit_algorithm_skips_planner(self, service_trees):
        __, __, tree_p, tree_q = service_trees
        with make_service(tree_p, tree_q, workers=1) as service:
            response = service.execute(
                CPQRequest(pair="pair", k=3, algorithm="std")
            )
            assert response.status == STATUS_OK
            assert response.algorithm == "std"
            assert response.plan is None
            assert service.metrics.planner_decisions == {}

    def test_cache_hit_on_repeat(self, service_trees):
        __, __, tree_p, tree_q = service_trees
        with make_service(tree_p, tree_q, workers=1) as service:
            first = service.execute(CPQRequest(pair="pair", k=4))
            second = service.execute(CPQRequest(pair="pair", k=4))
            assert not first.cached
            assert second.cached
            assert second.result is first.result
            snap = service.snapshot()
            assert snap["cache"]["hits"] == 1

    def test_knn_and_range(self, service_trees):
        points_p, points_q, tree_p, tree_q = service_trees
        with make_service(tree_p, tree_q, workers=2) as service:
            knn = service.execute(
                KNNRequest(pair="pair", point=(0.5, 0.5), k=3)
            )
            assert knn.status == STATUS_OK
            expected = sorted(
                math.dist((0.5, 0.5), p) for p in points_p
            )[:3]
            assert [d for d, __ in knn.result] == pytest.approx(expected)

            window = service.execute(RangeRequest(
                pair="pair", lo=(0.2, 0.2), hi=(0.4, 0.4), side="q",
            ))
            assert window.status == STATUS_OK
            expected_count = sum(
                0.2 <= x <= 0.4 and 0.2 <= y <= 0.4
                for x, y in points_q
            )
            assert len(window.result) == expected_count

    def test_unknown_pair_is_error_response(self, service_trees):
        __, __, tree_p, tree_q = service_trees
        with make_service(tree_p, tree_q, workers=1) as service:
            response = service.execute(CPQRequest(pair="nope"))
            assert response.status == STATUS_ERROR
            assert "unknown pair" in response.error

    def test_worker_exception_becomes_error_response(self, service_trees):
        __, __, tree_p, tree_q = service_trees
        with make_service(tree_p, tree_q, workers=1) as service:
            response = service.execute(
                CPQRequest(pair="pair", algorithm="bogus")
            )
            assert response.status == STATUS_ERROR
            assert "bogus" in response.error
            follow_up = service.execute(CPQRequest(pair="pair", k=1))
            assert follow_up.status == STATUS_OK

    def test_closed_service_rejects(self, service_trees):
        __, __, tree_p, tree_q = service_trees
        service = make_service(tree_p, tree_q, workers=1)
        service.close()
        response = service.execute(CPQRequest(pair="pair"))
        assert response.status == STATUS_REJECTED
        assert "closed" in response.error

    def test_close_drain_resolves_queued_queries(self, service_trees):
        # A single worker with a backlog: drain must block until every
        # admitted handle is resolved -- no caller left hanging.
        __, __, tree_p, tree_q = service_trees
        service = make_service(tree_p, tree_q, workers=1)
        handles = [
            service.submit(CPQRequest(
                pair="pair", k=3, algorithm="heap", use_cache=False,
            ))
            for __i in range(6)
        ]
        service.close(drain=True)
        assert all(handle.done() for handle in handles)
        assert [h.result(0).status for h in handles] == ["ok"] * 6


class TestDeadlines:
    def test_expired_deadline_returns_structured_response(
        self, service_trees
    ):
        """A ~0 ms deadline yields a deadline_exceeded response, not an
        exception, and the pool keeps serving afterwards."""
        __, __, tree_p, tree_q = service_trees
        with make_service(tree_p, tree_q, workers=1) as service:
            dead = service.execute(CPQRequest(
                pair="pair", k=5, deadline_ms=0.0, use_cache=False,
            ))
            assert dead.status == STATUS_DEADLINE
            assert dead.result is None
            alive = service.execute(CPQRequest(pair="pair", k=5))
            assert alive.status == STATUS_OK

    def test_cooperative_cancellation_mid_traversal(self):
        """A deadline expiring inside the traversal aborts it and
        leaves the buffer pool consistent."""
        import random

        rng = random.Random(7)
        points = [(rng.random(), rng.random()) for __ in range(600)]
        tree_p = bulk_load(points)
        tree_q = bulk_load([(rng.random(), rng.random())
                            for __ in range(600)])
        # Slow, tiny buffers: the query cannot finish inside 5 ms, but
        # it does get past admission and into the traversal.
        for tree in (tree_p, tree_q):
            tree.file.read_latency = 0.002
            tree.file.set_buffer_capacity(4)
        with make_service(tree_p, tree_q, workers=1) as service:
            response = service.execute(CPQRequest(
                pair="pair", k=3, deadline_ms=5.0, use_cache=False,
            ))
            assert response.status == STATUS_DEADLINE
            # Buffer pools are intact: bounded occupancy, and a fresh
            # run of the same query succeeds with correct results.
            for tree in (tree_p, tree_q):
                tree.file.read_latency = 0.0
                assert len(tree.file.buffer) <= tree.file.buffer.capacity
            retry = service.execute(CPQRequest(pair="pair", k=3))
            assert retry.status == STATUS_OK
            direct = k_closest_pairs(
                tree_p,
                tree_q,
                request=CoreRequest(k=3, algorithm="heap"),
            )
            assert retry.result.distances() == pytest.approx(
                direct.distances()
            )

    def test_default_deadline_applies(self, service_trees):
        __, __, tree_p, tree_q = service_trees
        with make_service(
            tree_p, tree_q, workers=1, default_deadline_ms=0.0
        ) as service:
            response = service.execute(
                CPQRequest(pair="pair", use_cache=False)
            )
            assert response.status == STATUS_DEADLINE


class TestAdmissionControl:
    def test_saturated_queue_rejects(self):
        import random

        rng = random.Random(11)
        tree_p = bulk_load([(rng.random(), rng.random())
                            for __ in range(300)])
        tree_q = bulk_load([(rng.random(), rng.random())
                            for __ in range(300)])
        # Make every query slow so the single worker stays busy.
        for tree in (tree_p, tree_q):
            tree.file.read_latency = 0.005
            tree.file.set_buffer_capacity(2)
        service = make_service(
            tree_p, tree_q, workers=1, queue_size=1, cache_size=0,
        )
        try:
            handles = [
                service.submit(CPQRequest(pair="pair", k=1 + i,
                                          use_cache=False))
                for i in range(12)
            ]
            responses = [h.result(timeout=60) for h in handles]
            statuses = {r.status for r in responses}
            assert STATUS_REJECTED in statuses
            rejected = [r for r in responses
                        if r.status == STATUS_REJECTED]
            assert all("queue full" in r.error for r in rejected)
            assert any(r.status == STATUS_OK for r in responses)
            snap = service.snapshot()
            assert snap["queries"]["by_status"][STATUS_REJECTED] == len(
                rejected
            )
        finally:
            service.close()


class TestSubmitBatch:
    def test_auto_requests_share_one_plan(self, service_trees):
        __, __, tree_p, tree_q = service_trees
        with make_service(tree_p, tree_q, workers=2) as service:
            handles = service.submit_batch([
                CPQRequest(pair="pair", k=5, use_cache=False)
                for __ in range(6)
            ])
            responses = [h.result(timeout=60) for h in handles]
            assert all(r.status == STATUS_OK for r in responses)
            # One PlanDecision object, shared by the whole batch...
            assert len({id(r.plan) for r in responses}) == 1
            # ...but every execution still tallies its applied decision.
            algorithm = responses[0].algorithm
            assert service.metrics.planner_decisions[algorithm] == 6

    def test_distinct_k_plan_separately(self, service_trees):
        __, __, tree_p, tree_q = service_trees
        with make_service(tree_p, tree_q, workers=2) as service:
            handles = service.submit_batch([
                CPQRequest(pair="pair", k=k, use_cache=False)
                for k in (2, 2, 9, 9)
            ])
            responses = [h.result(timeout=60) for h in handles]
            assert len({id(r.plan) for r in responses}) == 2

    def test_explicit_algorithm_not_preplanned(self, service_trees):
        __, __, tree_p, tree_q = service_trees
        with make_service(tree_p, tree_q, workers=1) as service:
            handles = service.submit_batch([
                CPQRequest(pair="pair", k=3, algorithm="std",
                           use_cache=False),
            ])
            response = handles[0].result(timeout=60)
            assert response.status == STATUS_OK
            assert response.plan is None

    def test_unknown_pair_still_resolves_as_error(self, service_trees):
        __, __, tree_p, tree_q = service_trees
        with make_service(tree_p, tree_q, workers=1) as service:
            handles = service.submit_batch([
                CPQRequest(pair="pair", k=2),
                CPQRequest(pair="nope", k=2),
            ])
            ok, bad = [h.result(timeout=60) for h in handles]
            assert ok.status == STATUS_OK
            assert bad.status == STATUS_ERROR
            assert "unknown pair" in bad.error


class TestIntraQueryParallelism:
    def test_explicit_workers_capped_by_budget(self, service_trees):
        __, __, tree_p, tree_q = service_trees
        with make_service(
            tree_p, tree_q, workers=1, max_query_workers=2,
        ) as service:
            response = service.execute(CPQRequest(
                pair="pair", k=5, algorithm="heap", workers=8,
                use_cache=False,
            ))
            assert response.status == STATUS_OK
            parallel = response.result.stats.extra["parallel"]
            assert parallel["workers"] == 2

    def test_default_budget_keeps_queries_serial(self, service_trees):
        __, __, tree_p, tree_q = service_trees
        with make_service(tree_p, tree_q, workers=1) as service:
            response = service.execute(CPQRequest(
                pair="pair", k=5, algorithm="heap", workers=8,
                use_cache=False,
            ))
            assert response.status == STATUS_OK
            assert "parallel" not in response.result.stats.extra

    def test_auto_workers_decided_by_planner(self, service_trees):
        __, __, tree_p, tree_q = service_trees
        eager = Planner(parallel_speedup_threshold=1.0)
        with make_service(
            tree_p, tree_q, workers=1, max_query_workers=4,
            planner=eager,
        ) as service:
            response = service.execute(CPQRequest(
                pair="pair", k=5, use_cache=False,
            ))
            assert response.status == STATUS_OK
            assert response.plan.workers == 4
            assert response.plan.estimated_speedup > 1.0
            if response.algorithm == "heap":
                parallel = response.result.stats.extra["parallel"]
                assert parallel["workers"] == 4

    def test_parallel_result_matches_cached_serial(self, service_trees):
        """workers is execution-only: a parallel run and a serial run
        share a cache entry because the results are identical."""
        __, __, tree_p, tree_q = service_trees
        with make_service(
            tree_p, tree_q, workers=1, max_query_workers=4,
        ) as service:
            first = service.execute(CPQRequest(
                pair="pair", k=6, algorithm="heap", workers=4,
            ))
            second = service.execute(CPQRequest(
                pair="pair", k=6, algorithm="heap", workers=1,
            ))
            assert not first.cached
            assert second.cached
            assert second.result is first.result


class TestExtensionAlgorithmsViaService:
    def test_semi_multiway_incremental_execute_and_cache(
        self, service_trees
    ):
        points_p, __, tree_p, tree_q = service_trees
        # A semi-join answers per point of P, not per K.
        expected_len = {"semi": len(points_p), "multiway": 4,
                        "incremental": 4}
        with make_service(tree_p, tree_q, workers=1) as service:
            for algorithm in ("semi", "multiway", "incremental"):
                first = service.execute(CPQRequest(
                    pair="pair", k=4, algorithm=algorithm,
                ))
                assert first.status == STATUS_OK, first.error
                assert len(first.result.pairs) == expected_len[algorithm]
                again = service.execute(CPQRequest(
                    pair="pair", k=4, algorithm=algorithm,
                ))
                assert again.cached
                assert again.result is first.result
            by_algo = service.snapshot()["latency_ms"]["by_algorithm"]
            assert {"semi", "multiway", "incremental"} <= set(by_algo)

    def test_incremental_matches_heap_distances(self, service_trees):
        __, __, tree_p, tree_q = service_trees
        with make_service(tree_p, tree_q, workers=1) as service:
            inc = service.execute(CPQRequest(
                pair="pair", k=5, algorithm="incremental",
                use_cache=False,
            ))
            heap = service.execute(CPQRequest(
                pair="pair", k=5, algorithm="heap", use_cache=False,
            ))
            assert inc.result.distances() == pytest.approx(
                heap.result.distances()
            )


class TestGenerationCounter:
    def test_insert_and_delete_bump_generation(self, small_tree):
        assert small_tree.generation == 0
        small_tree.insert((0.1, 0.2), 1)
        assert small_tree.generation == 1
        small_tree.insert((0.3, 0.4), 2)
        assert small_tree.generation == 2
        assert small_tree.delete((0.1, 0.2))
        assert small_tree.generation == 3
        # A miss does not bump.
        assert not small_tree.delete((9.9, 9.9))
        assert small_tree.generation == 3
