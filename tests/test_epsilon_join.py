"""Tests for the distance range join."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import distance_range_join
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree, RTreeConfig
from repro.storage.page import PageLayout
from repro.storage.stats import QueryStats

coord = st.floats(min_value=0, max_value=10, allow_nan=False)
point_lists = st.lists(st.tuples(coord, coord), min_size=0, max_size=40)


def brute(pts_p, pts_q, epsilon):
    return sorted(
        math.dist(p, q)
        for p in pts_p
        for q in pts_q
        if math.dist(p, q) <= epsilon
    )


class TestCorrectness:
    @given(point_lists, point_lists, st.floats(0, 5))
    @settings(max_examples=25)
    def test_matches_brute_force(self, pts_p, pts_q, epsilon):
        tree_p = bulk_load(pts_p)
        tree_q = bulk_load(pts_q)
        pairs = distance_range_join(tree_p, tree_q, epsilon)
        got = [pair.distance for pair in pairs]
        assert got == pytest.approx(brute(pts_p, pts_q, epsilon), abs=1e-9)
        assert got == sorted(got)

    def test_different_heights(self):
        rng = random.Random(9)
        config = RTreeConfig(layout=PageLayout(page_size=16 + 4 * 48))
        pts_p = [(rng.random(), rng.random()) for __ in range(15)]
        pts_q = [(rng.random(), rng.random()) for __ in range(600)]
        tree_p = bulk_load(pts_p, config=config)
        tree_q = bulk_load(pts_q, config=config)
        assert tree_p.height != tree_q.height
        pairs = distance_range_join(tree_p, tree_q, 0.1)
        assert [p.distance for p in pairs] == pytest.approx(
            brute(pts_p, pts_q, 0.1), abs=1e-9
        )

    def test_epsilon_zero_finds_coincident_points(self):
        tree_p = bulk_load([(1.0, 1.0), (2.0, 2.0)])
        tree_q = bulk_load([(1.0, 1.0), (3.0, 3.0)])
        pairs = distance_range_join(tree_p, tree_q, 0.0)
        assert len(pairs) == 1
        assert pairs[0].distance == 0.0

    def test_result_pairs_carry_oids(self):
        tree_p = bulk_load([(0.0, 0.0)], oids=[42])
        tree_q = bulk_load([(0.5, 0.0)], oids=[7])
        pairs = distance_range_join(tree_p, tree_q, 1.0)
        assert pairs[0].p_oid == 42
        assert pairs[0].q_oid == 7


class TestBehaviour:
    def test_negative_epsilon_rejected(self):
        tree = bulk_load([(0.0, 0.0)])
        with pytest.raises(ValueError):
            distance_range_join(tree, tree, -0.1)

    def test_empty_trees(self):
        assert distance_range_join(RTree(), bulk_load([(0.0, 0.0)]), 1) == []

    def test_dimension_mismatch(self):
        t2 = bulk_load([(0.0, 0.0)])
        t3 = RTree(RTreeConfig(layout=PageLayout(dimension=3)))
        with pytest.raises(ValueError):
            distance_range_join(t2, t3, 1.0)

    def test_pruning_beats_full_scan(self):
        rng = random.Random(10)
        pts_p = [(rng.random(), rng.random()) for __ in range(3000)]
        pts_q = [(rng.random() + 2.0, rng.random()) for __ in range(3000)]
        tree_p = bulk_load(pts_p)
        tree_q = bulk_load(pts_q)
        tree_p.file.reset_for_query()
        tree_q.file.reset_for_query()
        stats = QueryStats()
        pairs = distance_range_join(tree_p, tree_q, 0.05, stats=stats)
        assert pairs == []  # workspaces are 1.0 apart
        assert stats.disk_accesses < 10

    def test_stats_collected(self):
        rng = random.Random(11)
        pts = [(rng.random(), rng.random()) for __ in range(500)]
        tree_p = bulk_load(pts)
        tree_q = bulk_load(pts)
        tree_p.file.reset_for_query()
        tree_q.file.reset_for_query()
        stats = QueryStats()
        pairs = distance_range_join(tree_p, tree_q, 0.01, stats=stats)
        assert stats.disk_accesses > 0
        assert stats.distance_computations > 0
        assert len(pairs) >= 500  # at least the coincident pairs
