"""Write-ahead log: record framing, torn tails, replay.

Covers the WAL in isolation (no tree): hypothesis round-trips of
arbitrary record sequences through append + replay, torn-tail
detection for every damage shape (short header, short payload, bad
magic, bad CRC, zeroed tail), and committed-batch-only recovery onto
a bare page store.  Crash recovery of a *tree* through the WAL lives
in ``tests/test_recovery.py``.
"""

from __future__ import annotations

import os
import struct
import zlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.store import MemoryPageStore
from repro.storage.wal import (
    REC_BEGIN,
    REC_COMMIT,
    REC_FREE,
    REC_WRITE,
    WAL_MAGIC,
    WriteAheadLog,
    recover_tree,
)

PAGE = 64


def wal_at(tmp_path, name="test.wal", sync="flush"):
    return WriteAheadLog(str(tmp_path / name), sync_mode=sync)


def page_image(fill: int) -> bytes:
    return bytes([fill % 256]) * PAGE


class TestFraming:
    def test_empty_log_replays_nothing(self, tmp_path):
        with wal_at(tmp_path) as wal:
            assert list(wal.replay()) == []

    def test_single_batch_round_trip(self, tmp_path):
        with wal_at(tmp_path) as wal:
            wal.begin(0)
            wal.log_write(3, page_image(7))
            wal.log_free(9)
            wal.commit(1, root_id=3, height=1, count=5)
            records = list(wal.replay())
        assert [r[0] for r in records] == [
            REC_BEGIN, REC_WRITE, REC_FREE, REC_COMMIT,
        ]
        # Offsets strictly increase and end at the file size.
        offsets = [r[2] for r in records]
        assert offsets == sorted(offsets)
        assert offsets[-1] == os.path.getsize(wal.path)

    @given(st.lists(
        st.one_of(
            st.tuples(st.just("write"),
                      st.integers(min_value=0, max_value=500),
                      st.binary(min_size=PAGE, max_size=PAGE)),
            st.tuples(st.just("free"),
                      st.integers(min_value=0, max_value=500),
                      st.just(b"")),
        ),
        max_size=12,
    ))
    def test_record_sequences_round_trip(self, tmp_path_factory, ops):
        path = str(tmp_path_factory.mktemp("wal") / "rt.wal")
        with WriteAheadLog(path, sync_mode="none") as wal:
            wal.begin(0)
            for kind, page_id, data in ops:
                if kind == "write":
                    wal.log_write(page_id, data)
                else:
                    wal.log_free(page_id)
            wal.commit(1, root_id=None, height=0, count=0)
            replayed = list(wal.replay())
        # BEGIN + ops + COMMIT, every payload byte-identical.
        assert len(replayed) == len(ops) + 2
        for (kind, page_id, data), (rec_type, payload, __) in zip(
            ops, replayed[1:-1]
        ):
            if kind == "write":
                assert rec_type == REC_WRITE
                (decoded_id,) = struct.unpack_from("<q", payload, 0)
                assert decoded_id == page_id
                assert payload[8:] == data
            else:
                assert rec_type == REC_FREE
                (decoded_id,) = struct.unpack("<q", payload)
                assert decoded_id == page_id

    def test_sync_mode_validation(self, tmp_path):
        with pytest.raises(ValueError, match="sync_mode"):
            WriteAheadLog(str(tmp_path / "x.wal"), sync_mode="wrong")


class TestTornTails:
    @pytest.mark.parametrize("shape", [
        "truncate_header", "truncate_payload", "zero_tail", "bad_magic",
        "flip_payload_bit",
    ])
    def test_damage_shapes_stop_replay(self, tmp_path, shape):
        def damage(path):
            size = os.path.getsize(path)
            with open(path, "r+b") as fh:
                if shape == "truncate_header":
                    fh.truncate(size - (size - clean[0]) + 4)
                elif shape == "truncate_payload":
                    fh.truncate(size - 3)
                elif shape == "zero_tail":
                    fh.seek(clean[0])
                    fh.write(b"\x00" * (size - clean[0]))
                elif shape == "bad_magic":
                    fh.seek(clean[0])
                    fh.write(b"\xff\xff")
                else:  # flip a payload bit of the last record
                    fh.seek(size - 1)
                    last = fh.read(1)
                    fh.seek(size - 1)
                    fh.write(bytes([last[0] ^ 0x40]))

        clean = []
        wal = wal_at(tmp_path)
        wal.begin(0)
        wal.log_write(0, page_image(1))
        wal.commit(1, root_id=0, height=1, count=1)
        clean.append(os.path.getsize(wal.path))
        wal.begin(1)
        wal.log_write(1, page_image(2))
        wal._file.flush()
        damage(wal.path)
        records = list(wal.replay())
        # Replay never reads past the damage and never yields a
        # record from the torn batch's damaged point onward.
        assert all(end <= os.path.getsize(wal.path) for *_, end in records)
        store = MemoryPageStore(PAGE)
        result = wal.recover_into(store)
        assert result.generation == 1  # the committed batch survives
        assert store.read(0) == page_image(1)
        wal.close()

    def test_truncate_torn_tail(self, tmp_path):
        wal = wal_at(tmp_path)
        wal.begin(0)
        wal.commit(1, root_id=None, height=0, count=0)
        clean_size = os.path.getsize(wal.path)
        wal._file.write(b"\x57garbage-not-a-frame")
        wal._file.flush()
        dropped = wal.truncate_torn_tail()
        assert dropped > 0
        assert os.path.getsize(wal.path) == clean_size
        # Appending after the truncation produces a clean log again.
        wal.begin(1)
        wal.commit(2, root_id=None, height=0, count=0)
        result = wal.recover_into(MemoryPageStore(PAGE))
        assert result.generation == 2
        assert not result.torn
        wal.close()


class TestRecoverInto:
    def test_only_committed_batches_apply(self, tmp_path):
        store = MemoryPageStore(PAGE)
        with wal_at(tmp_path) as wal:
            wal.begin(0)
            wal.log_write(0, page_image(1))
            wal.commit(1, root_id=0, height=1, count=1)
            wal.begin(1)
            wal.log_write(0, page_image(2))  # never committed
            result = wal.recover_into(store)
        assert result.generation == 1
        assert result.batches_applied == 1
        assert result.discarded_batches == 1
        assert store.read(0) == page_image(1)

    def test_later_commit_wins(self, tmp_path):
        store = MemoryPageStore(PAGE)
        with wal_at(tmp_path) as wal:
            wal.begin(0)
            wal.log_write(0, page_image(1))
            wal.commit(1, root_id=0, height=1, count=1)
            wal.begin(1)
            wal.log_write(0, page_image(9))
            wal.log_free(1)
            wal.commit(2, root_id=0, height=1, count=2)
            result = wal.recover_into(store)
        assert result.generation == 2
        assert store.read(0) == page_image(9)
        # FREEd page 1 was ensure_allocated'd then freed again.
        with pytest.raises(KeyError):
            store.read(1)

    def test_free_records_rebuild_free_list(self, tmp_path):
        store = MemoryPageStore(PAGE)
        with wal_at(tmp_path) as wal:
            wal.begin(0)
            wal.log_write(5, page_image(3))
            wal.log_free(2)
            wal.commit(1, root_id=5, height=1, count=1)
            wal.recover_into(store)
        assert store.read(5) == page_image(3)
        # Page 2 is on the free list: allocating hands it back first.
        assert store.allocate() == 2

    def test_checkpoint_empties_log(self, tmp_path):
        with wal_at(tmp_path) as wal:
            wal.begin(0)
            wal.commit(1, root_id=None, height=0, count=0)
            wal.checkpoint()
            assert os.path.getsize(wal.path) == 0
            assert list(wal.replay()) == []

    def test_recover_tree_without_commit_uses_fallback(self, tmp_path):
        pages = str(tmp_path / "t.pages")
        walp = str(tmp_path / "t.wal")
        open(pages, "wb").close()
        with WriteAheadLog(walp, sync_mode="none") as wal:
            wal.begin(0)  # begun, never committed
        tree, result = recover_tree(pages, walp, page_size=1024)
        assert tree is None and result.generation is None
        fallback = {"root_id": None, "height": 0, "count": 0,
                    "generation": 0, "variant": "rstar",
                    "page_size": 1024, "dimension": 2}
        tree, result = recover_tree(pages, walp, page_size=1024,
                                    fallback_metadata=fallback)
        assert tree is not None and len(tree) == 0
        tree.file.store.close()


class TestCrcCoverage:
    def test_crc_covers_type_and_length(self, tmp_path):
        """A frame whose type was altered (CRC unchanged) is rejected."""
        with wal_at(tmp_path) as wal:
            wal.begin(0)
            wal.commit(1, root_id=None, height=0, count=0)
            path = wal.path
        with open(path, "r+b") as fh:
            # Flip the record type of the first frame from BEGIN to
            # FREE without touching its CRC.
            fh.seek(2)
            fh.write(struct.pack("<H", REC_FREE))
        with WriteAheadLog(path, sync_mode="none") as wal:
            assert list(wal.replay()) == []  # stops at frame 0

    def test_magic_word(self):
        assert struct.pack("<H", WAL_MAGIC) == b"WL"

    def test_frame_crc_matches_manual(self, tmp_path):
        with wal_at(tmp_path) as wal:
            wal.log_free(42)
            path = wal.path
        with open(path, "rb") as fh:
            magic, rec_type, length, crc = struct.unpack("<HHII",
                                                         fh.read(12))
            payload = fh.read(length)
        assert magic == WAL_MAGIC and rec_type == REC_FREE
        expected = zlib.crc32(struct.pack("<HI", rec_type, length))
        expected = zlib.crc32(payload, expected) & 0xFFFFFFFF
        assert crc == expected
