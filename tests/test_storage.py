"""Tests for page layout, serialisation and page stores."""

import pytest

from repro.storage.page import HEADER_SIZE, PageLayout, entry_size
from repro.storage.serializer import NodeSerializer, PageOverflowError
from repro.storage.store import FilePageStore, MemoryPageStore


class TestPageLayout:
    def test_paper_configuration(self):
        # 1 KiB pages give the paper's M = 21, m = 7.
        layout = PageLayout(page_size=1024)
        assert layout.max_entries == 21
        assert layout.min_entries == 7

    def test_capacity_scales_with_page_size(self):
        assert PageLayout(page_size=2048).max_entries == 42
        assert PageLayout(page_size=512).max_entries == 10

    def test_entry_size_grows_with_dimension(self):
        assert entry_size(2) == 48
        assert entry_size(3) == 56
        assert entry_size(1) == 48  # padded to the 2-d slot

    def test_min_entries_never_exceeds_half(self):
        layout = PageLayout(page_size=1024, min_fill_ratio=0.5)
        assert layout.min_entries <= layout.max_entries // 2

    def test_too_small_page_rejected(self):
        with pytest.raises(ValueError):
            PageLayout(page_size=32)

    def test_bad_fill_ratio_rejected(self):
        with pytest.raises(ValueError):
            PageLayout(min_fill_ratio=0.8)
        with pytest.raises(ValueError):
            PageLayout(min_fill_ratio=0.0)

    def test_bad_dimension_rejected(self):
        with pytest.raises(ValueError):
            PageLayout(dimension=0)


class TestSerializer:
    @pytest.fixture
    def serializer(self):
        return NodeSerializer(PageLayout(page_size=1024))

    def test_leaf_roundtrip(self, serializer):
        entries = [((1.5, -2.5), 7), ((0.0, 0.0), 0), ((1e9, -1e-9), 42)]
        page = serializer.serialize_leaf(entries)
        assert len(page) == 1024
        level, decoded = serializer.deserialize(page)
        assert level == 0
        assert decoded == entries

    def test_internal_roundtrip(self, serializer):
        entries = [
            ((0.0, 0.0), (1.0, 1.0), 5),
            ((-3.5, 2.0), (7.25, 9.0), 12),
        ]
        page = serializer.serialize_internal(3, entries)
        level, decoded = serializer.deserialize(page)
        assert level == 3
        assert decoded == entries

    def test_empty_node_roundtrip(self, serializer):
        level, decoded = serializer.deserialize(serializer.serialize_leaf([]))
        assert level == 0
        assert decoded == []

    def test_full_node_roundtrip(self, serializer):
        entries = [((float(i), float(-i)), i) for i in range(21)]
        level, decoded = serializer.deserialize(
            serializer.serialize_leaf(entries)
        )
        assert decoded == entries

    def test_overflow_rejected(self, serializer):
        entries = [((float(i), 0.0), i) for i in range(22)]
        with pytest.raises(PageOverflowError):
            serializer.serialize_leaf(entries)

    def test_internal_level_zero_rejected(self, serializer):
        with pytest.raises(ValueError):
            serializer.serialize_internal(0, [])

    def test_wrong_page_size_rejected(self, serializer):
        with pytest.raises(ValueError):
            serializer.deserialize(b"\x00" * 100)

    def test_3d_roundtrip(self):
        serializer = NodeSerializer(PageLayout(page_size=1024, dimension=3))
        entries = [((1.0, 2.0, 3.0), 9)]
        level, decoded = serializer.deserialize(
            serializer.serialize_leaf(entries)
        )
        assert decoded == entries


class StoreContract:
    """Behaviour shared by every page store implementation."""

    def make(self, tmp_path):
        raise NotImplementedError

    def test_allocate_write_read(self, tmp_path):
        store = self.make(tmp_path)
        pid = store.allocate()
        data = bytes(range(256)) * 4
        store.write(pid, data)
        assert store.read(pid) == data

    def test_ids_unique(self, tmp_path):
        store = self.make(tmp_path)
        ids = {store.allocate() for __ in range(50)}
        assert len(ids) == 50

    def test_freed_page_reused(self, tmp_path):
        store = self.make(tmp_path)
        pid = store.allocate()
        store.free(pid)
        assert store.allocate() == pid

    def test_read_unwritten_or_freed_rejected(self, tmp_path):
        store = self.make(tmp_path)
        pid = store.allocate()
        store.free(pid)
        with pytest.raises(KeyError):
            store.read(pid)

    def test_write_unallocated_rejected(self, tmp_path):
        store = self.make(tmp_path)
        with pytest.raises(KeyError):
            store.write(999, b"\x00" * 1024)

    def test_wrong_size_write_rejected(self, tmp_path):
        store = self.make(tmp_path)
        pid = store.allocate()
        with pytest.raises(ValueError):
            store.write(pid, b"short")

    def test_len_counts_live_pages(self, tmp_path):
        store = self.make(tmp_path)
        a = store.allocate()
        store.allocate()
        assert len(store) == 2
        store.free(a)
        assert len(store) == 1


class TestMemoryPageStore(StoreContract):
    def make(self, tmp_path):
        return MemoryPageStore(1024)


class TestFilePageStore(StoreContract):
    def make(self, tmp_path):
        return FilePageStore(str(tmp_path / "pages.bin"), 1024)

    def test_data_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "persist.bin")
        with FilePageStore(path, 1024) as store:
            pid = store.allocate()
            store.write(pid, b"\xab" * 1024)
            store.flush()
        with FilePageStore(path, 1024) as reopened:
            assert reopened.read(pid) == b"\xab" * 1024

    def test_non_page_aligned_file_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"x" * 100)
        with pytest.raises(ValueError):
            FilePageStore(str(path), 1024)


class TestEnsureAllocated:
    """WAL replay's entry point: make a specific page id live."""

    @pytest.mark.parametrize("factory", [
        lambda tmp_path: MemoryPageStore(1024),
        lambda tmp_path: FilePageStore(str(tmp_path / "ea.bin"), 1024),
    ], ids=["memory", "file"])
    def test_sparse_id_becomes_writable(self, tmp_path, factory):
        store = factory(tmp_path)
        store.ensure_allocated(7)
        store.write(7, b"\x07" * 1024)
        assert store.read(7) == b"\x07" * 1024
        # Fresh allocations never collide with the forced id.
        assert all(store.allocate() != 7 for __ in range(10))

    def test_already_allocated_is_a_noop(self, tmp_path):
        store = MemoryPageStore(1024)
        pid = store.allocate()
        store.write(pid, b"\x01" * 1024)
        store.ensure_allocated(pid)
        assert store.read(pid) == b"\x01" * 1024

    def test_resurrects_freed_page(self, tmp_path):
        store = MemoryPageStore(1024)
        pid = store.allocate()
        store.free(pid)
        store.ensure_allocated(pid)
        store.write(pid, b"\x02" * 1024)
        assert store.read(pid) == b"\x02" * 1024


class TestMmapReadPath:
    def test_mmap_reads_match_buffered(self, tmp_path):
        path = str(tmp_path / "m.bin")
        images = {}
        with FilePageStore(path, 1024) as store:
            for fill in range(8):
                pid = store.allocate()
                images[pid] = bytes([fill]) * 1024
                store.write(pid, images[pid])
            store.flush()
        with FilePageStore(path, 1024, readonly=True,
                           use_mmap=True) as mapped:
            for pid, image in images.items():
                assert mapped.read(pid) == image

    def test_mapped_store_sees_its_own_writes(self, tmp_path):
        # A writable mmap store must flush before mapping, or a read
        # would return stale bytes from before the buffered write.
        path = str(tmp_path / "rw.bin")
        with FilePageStore(path, 1024, use_mmap=True) as store:
            pid = store.allocate()
            store.write(pid, b"\xaa" * 1024)
            assert store.read(pid) == b"\xaa" * 1024
            store.write(pid, b"\xbb" * 1024)
            assert store.read(pid) == b"\xbb" * 1024

    def test_remap_after_growth(self, tmp_path):
        # Reads establish a mapping sized to the file; later
        # allocations grow the file and must trigger a remap.
        path = str(tmp_path / "grow.bin")
        with FilePageStore(path, 1024, use_mmap=True) as store:
            first = store.allocate()
            store.write(first, b"\x01" * 1024)
            assert store.read(first) == b"\x01" * 1024
            later = [store.allocate() for __ in range(16)]
            for pid in later:
                store.write(pid, bytes([pid % 256]) * 1024)
            for pid in later:
                assert store.read(pid) == bytes([pid % 256]) * 1024

    def test_mmap_on_empty_file_falls_back(self, tmp_path):
        # Zero-length files cannot be mapped; reads must not crash.
        path = str(tmp_path / "empty.bin")
        with FilePageStore(path, 1024, use_mmap=True) as store:
            pid = store.allocate()
            store.write(pid, b"\x0f" * 1024)
            assert store.read(pid) == b"\x0f" * 1024
