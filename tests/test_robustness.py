"""Robustness and failure-injection tests.

Storage-layer fuzzing (corrupted page images must fail loudly, not
silently corrupt the tree), API misuse, and doctest execution for the
modules that carry runnable examples.
"""

import doctest
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.page import HEADER_SIZE, PageLayout
from repro.storage.serializer import NodeSerializer


class TestSerializerFuzz:
    layout = PageLayout(page_size=1024)

    def make(self):
        return NodeSerializer(self.layout)

    @given(st.binary(min_size=1024, max_size=1024))
    @settings(max_examples=40)
    def test_arbitrary_pages_never_crash_outside_value_errors(self, blob):
        serializer = self.make()
        # Random bytes either decode into (level, entries) or raise a
        # struct/Value error for impossible counts -- never anything
        # else, and never an infinite loop.
        try:
            level, entries = serializer.deserialize(blob)
        except (ValueError, struct.error):
            return
        assert isinstance(level, int)
        assert isinstance(entries, list)

    def test_truncated_page_rejected(self):
        serializer = self.make()
        with pytest.raises(ValueError):
            serializer.deserialize(b"\x00" * 1023)

    def test_oversized_count_detected(self):
        serializer = self.make()
        # Header claims more entries than a page can hold.
        page = struct.pack("<ii8x", 0, 1_000) + b"\x00" * (1024 - 16)
        with pytest.raises((ValueError, struct.error)):
            serializer.deserialize(page)

    def test_roundtrip_with_extreme_floats(self):
        serializer = self.make()
        entries = [
            ((1e308, -1e308), 2 ** 62),
            ((5e-324, -5e-324), -(2 ** 62)),
            ((0.0, -0.0), 0),
        ]
        level, decoded = serializer.deserialize(
            serializer.serialize_leaf(entries)
        )
        assert decoded == entries


class TestHeaderArithmetic:
    def test_header_size_matches_struct(self):
        assert struct.calcsize("<ii8x") == HEADER_SIZE


class TestDoctests:
    @pytest.mark.parametrize(
        "module_name",
        ["repro.core.api"],
    )
    def test_module_doctests_pass(self, module_name):
        module = __import__(module_name, fromlist=["__name__"])
        failures, tried = doctest.testmod(
            module, verbose=False
        ).failed, doctest.testmod(module, verbose=False).attempted
        assert tried > 0
        assert failures == 0


class TestStatsMisuse:
    def test_result_distances_consistent_after_many_queries(self):
        # Re-running on the same trees must not leak state between
        # queries (fresh K-heap, fresh bounds).
        import random

        from repro.core import k_closest_pairs
        from repro.rtree.bulk import bulk_load

        rng = random.Random(3)
        pts = [(rng.random(), rng.random()) for __ in range(300)]
        tree_p = bulk_load(pts)
        tree_q = bulk_load(pts)
        first = k_closest_pairs(tree_p, tree_q, k=7).distances()
        for __ in range(3):
            again = k_closest_pairs(tree_p, tree_q, k=7).distances()
            assert again == first
