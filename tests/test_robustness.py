"""Robustness and failure-injection tests.

Storage-layer fuzzing (corrupted page images must fail loudly, not
silently corrupt the tree), API misuse, and doctest execution for the
modules that carry runnable examples.
"""

import doctest
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageCorruptionError
from repro.storage.page import HEADER_SIZE, PAGE_FORMAT_VERSION, PageLayout
from repro.storage.serializer import NodeSerializer, page_checksum


class TestSerializerFuzz:
    layout = PageLayout(page_size=1024)

    def make(self):
        return NodeSerializer(self.layout)

    @given(st.binary(min_size=1024, max_size=1024))
    @settings(max_examples=40)
    def test_arbitrary_pages_never_crash_outside_value_errors(self, blob):
        serializer = self.make()
        # Random bytes either decode into (level, entries) or raise a
        # struct/Value error for impossible counts -- never anything
        # else, and never an infinite loop.
        try:
            level, entries = serializer.deserialize(blob)
        except (ValueError, struct.error):
            return
        assert isinstance(level, int)
        assert isinstance(entries, list)

    def test_truncated_page_rejected(self):
        serializer = self.make()
        with pytest.raises(ValueError):
            serializer.deserialize(b"\x00" * 1023)

    def test_oversized_count_detected(self):
        serializer = self.make()
        # Header claims more entries than a page can hold.
        page = struct.pack("<ii8x", 0, 1_000) + b"\x00" * (1024 - 16)
        with pytest.raises((ValueError, struct.error)):
            serializer.deserialize(page)

    def test_roundtrip_with_extreme_floats(self):
        serializer = self.make()
        entries = [
            ((1e308, -1e308), 2 ** 62),
            ((5e-324, -5e-324), -(2 ** 62)),
            ((0.0, -0.0), 0),
        ]
        level, decoded = serializer.deserialize(
            serializer.serialize_leaf(entries)
        )
        assert decoded == entries


#: Finite coordinates that survive an exact f8 round-trip.
coordinates = st.floats(
    allow_nan=False, allow_infinity=False, width=64,
    min_value=-1e12, max_value=1e12,
)
leaf_entries = st.lists(
    st.tuples(st.tuples(coordinates, coordinates),
              st.integers(min_value=0, max_value=2 ** 40)),
    min_size=0, max_size=21,
)
internal_entries = st.lists(
    st.tuples(st.tuples(coordinates, coordinates),
              st.tuples(coordinates, coordinates),
              st.integers(min_value=0, max_value=2 ** 20)),
    min_size=0, max_size=21,
)


class TestChecksumProperties:
    """Property tests of the version-1 checksummed page format."""

    layout = PageLayout(page_size=1024)

    def make(self):
        return NodeSerializer(self.layout)

    @given(leaf_entries)
    @settings(max_examples=40)
    def test_leaf_roundtrip_verifies(self, entries):
        serializer = self.make()
        page = serializer.serialize_leaf(entries)
        level, decoded = serializer.deserialize(page)
        assert level == 0
        assert decoded == entries
        # The embedded CRC matches a recomputation over the page.
        stored = struct.unpack_from("<I", page, 12)[0]
        assert stored == page_checksum(page)

    @given(internal_entries, st.integers(min_value=1, max_value=10))
    @settings(max_examples=40)
    def test_internal_roundtrip_verifies(self, entries, level):
        serializer = self.make()
        page = serializer.serialize_internal(level, entries)
        got_level, decoded = serializer.deserialize(page)
        assert got_level == level
        assert decoded == entries

    @given(leaf_entries, st.integers(min_value=0, max_value=1024 * 8 - 1))
    @settings(max_examples=40)
    def test_any_single_bitflip_detected_leaf(self, entries, bit):
        serializer = self.make()
        page = bytearray(serializer.serialize_leaf(entries))
        page[bit // 8] ^= 1 << (bit % 8)
        with pytest.raises(PageCorruptionError):
            serializer.deserialize(bytes(page))

    @given(internal_entries,
           st.integers(min_value=1, max_value=10),
           st.integers(min_value=0, max_value=1024 * 8 - 1))
    @settings(max_examples=40)
    def test_any_single_bitflip_detected_internal(
        self, entries, level, bit
    ):
        serializer = self.make()
        page = bytearray(serializer.serialize_internal(level, entries))
        page[bit // 8] ^= 1 << (bit % 8)
        with pytest.raises(PageCorruptionError):
            serializer.deserialize(bytes(page))

    def legacy_page(self, entries):
        """A true pre-checksum page: header tail (version, magic, CRC)
        all zero."""
        page = bytearray(self.make().serialize_leaf(entries))
        page[8:16] = b"\x00" * 8
        return bytes(page)

    def test_legacy_version_zero_pages_read_when_opted_in(self):
        """Pages written before the checksum era (zeroed padding) are
        decoded without verification -- but only behind the explicit
        ``allow_legacy`` flag."""
        serializer = NodeSerializer(self.layout, allow_legacy=True)
        entries = [((1.5, -2.5), 7), ((0.25, 8.0), 9)]
        level, decoded = serializer.deserialize(self.legacy_page(entries))
        assert level == 0
        assert decoded == entries

    def test_version_zero_rejected_by_default(self):
        """Without the legacy opt-in a zeroed version word is treated
        as corruption: it is indistinguishable from a torn header
        write, which must never decode as an all-zero node."""
        page = self.legacy_page([((1.5, -2.5), 7)])
        with pytest.raises(PageCorruptionError):
            self.make().deserialize(page)

    def test_torn_header_not_mistaken_for_legacy(self):
        """A torn write persisting only the first 8 header bytes zeroes
        the version word but keeps level/count -- exactly the shape of
        a legacy page with zeroed entries.  The default serializer must
        reject it rather than return a silently wrong node."""
        serializer = self.make()
        page = bytearray(serializer.serialize_leaf([((3.0, 4.0), 11)]))
        torn = bytes(page[:8]) + b"\x00" * (len(page) - 8)
        with pytest.raises(PageCorruptionError):
            serializer.deserialize(torn)

    def test_version_flip_to_zero_detected_even_with_legacy(self):
        """Flipping the version LSB (1 -> 0) must not skip validation:
        the magic word still carries the v1 stamp, so the page is
        rejected even by a legacy-tolerant serializer."""
        serializer = NodeSerializer(self.layout, allow_legacy=True)
        page = bytearray(serializer.serialize_leaf([((1.0, 2.0), 3)]))
        page[8] ^= 0x01
        with pytest.raises(PageCorruptionError):
            serializer.deserialize(bytes(page))

    def test_unknown_version_rejected(self):
        serializer = self.make()
        page = bytearray(serializer.serialize_leaf([((0.0, 0.0), 1)]))
        struct.pack_into("<H", page, 8, PAGE_FORMAT_VERSION + 1)
        with pytest.raises(PageCorruptionError):
            serializer.deserialize(bytes(page))


class TestHeaderArithmetic:
    def test_header_size_matches_struct(self):
        assert struct.calcsize("<ii8x") == HEADER_SIZE
        assert struct.calcsize("<iiHHI") == HEADER_SIZE


class TestDoctests:
    @pytest.mark.parametrize(
        "module_name",
        ["repro.core.api"],
    )
    def test_module_doctests_pass(self, module_name):
        module = __import__(module_name, fromlist=["__name__"])
        failures, tried = doctest.testmod(
            module, verbose=False
        ).failed, doctest.testmod(module, verbose=False).attempted
        assert tried > 0
        assert failures == 0


class TestStatsMisuse:
    def test_result_distances_consistent_after_many_queries(self):
        # Re-running on the same trees must not leak state between
        # queries (fresh K-heap, fresh bounds).
        import random

        from repro.core import CPQRequest, k_closest_pairs
        from repro.rtree.bulk import bulk_load

        rng = random.Random(3)
        pts = [(rng.random(), rng.random()) for __ in range(300)]
        tree_p = bulk_load(pts)
        tree_q = bulk_load(pts)
        first = k_closest_pairs(tree_p, tree_q, request=CPQRequest(k=7)).distances()
        for __ in range(3):
            again = k_closest_pairs(tree_p, tree_q, request=CPQRequest(k=7)).distances()
            assert again == first
