"""Tests for the experiment Table type."""

import pytest

from repro.experiments.report import Table, format_value


class TestFormatValue:
    def test_ints(self):
        assert format_value(7) == "7"
        assert format_value(12345) == "12,345"

    def test_floats(self):
        assert format_value(3.14159) == "3.14"
        assert format_value(2.0) == "2"
        assert format_value(123456.0) == "123,456"
        assert format_value(float("nan")) == "-"

    def test_strings(self):
        assert format_value("HEAP") == "HEAP"


class TestTable:
    @pytest.fixture
    def table(self):
        t = Table("Demo", columns=("alg", "k", "cost"))
        t.add("STD", 1, 10)
        t.add("STD", 10, 25)
        t.add("HEAP", 1, 8)
        return t

    def test_add_validates_arity(self, table):
        with pytest.raises(ValueError):
            table.add("STD", 1)

    def test_column(self, table):
        assert table.column("alg") == ["STD", "STD", "HEAP"]

    def test_select(self, table):
        rows = table.select(alg="STD")
        assert len(rows) == 2
        assert table.select(alg="STD", k=10)[0][2] == 25

    def test_value(self, table):
        assert table.value("cost", alg="HEAP", k=1) == 8

    def test_value_requires_unique_match(self, table):
        with pytest.raises(ValueError):
            table.value("cost", alg="STD")

    def test_render_contains_everything(self, table):
        table.notes = "shape note"
        text = table.render()
        assert "Demo" in text
        assert "HEAP" in text
        assert "shape note" in text
        assert str(table) == text

    def test_csv(self, table, tmp_path):
        path = tmp_path / "out.csv"
        table.to_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "alg,k,cost"
        assert len(lines) == 4
