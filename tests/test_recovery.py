"""Crash recovery: kill a writer mid-batch, replay the WAL, compare.

The acceptance chaos test for the live-mutation layer
(``docs/STORAGE.md``): a subprocess runs ``repro-cpq ingest
--crash-after N`` and dies via ``os._exit`` in the middle of batch
``N+1`` -- WRITE records in the log, no COMMIT, page file never
flushed.  ``repro-cpq recover`` replays the committed prefix, and all
five core algorithms must return byte-identical pairs *and tie order*
against a never-crashed baseline tree built from the same committed
batches.  Torn-WAL damage on top of the crash (``tear_file_tail``)
must still recover every batch whose COMMIT frame survived.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys

import pytest

from repro.core import CPQRequest, k_closest_pairs
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree, RTreeConfig
from repro.rtree.validate import validate
from repro.storage.faults import tear_file_tail
from repro.storage.paged_file import PagedFile
from repro.storage.store import FilePageStore
from repro.storage.wal import WriteAheadLog, recover_tree

ALGORITHMS = ("naive", "exh", "sim", "std", "heap")
BATCH = 40
CRASH_AFTER = 3  # committed batches before the crash

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def run_cli(*argv, expect=0):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep * bool(env.get("PYTHONPATH")) \
        + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == expect, (
        f"{argv} -> {proc.returncode}:\n{proc.stdout}\n{proc.stderr}"
    )
    return proc


def make_points(n, seed):
    rng = random.Random(seed)
    return [(round(rng.random(), 6), round(rng.random(), 6))
            for __ in range(n)]


def write_csv(path, points):
    with open(path, "w") as handle:
        handle.write("x,y\n")
        for x, y in points:
            handle.write(f"{x},{y}\n")


def baseline_tree(points, batch_size=BATCH, batches=CRASH_AFTER):
    """A never-crashed tree: the same committed batches, in process."""
    tree = RTree(RTreeConfig())
    tree.enable_live_mutation()
    for b in range(batches):
        with tree.batch():
            chunk = points[b * batch_size:(b + 1) * batch_size]
            for i, point in enumerate(chunk):
                tree.insert(point, b * batch_size + i)
    return tree


def pairs_signature(result):
    return [(p.p, p.q, p.distance) for p in result.pairs]


@pytest.fixture(scope="module")
def crashed_workdir(tmp_path_factory):
    """Ingest 220 points, crash mid-batch 4, leave the wreckage."""
    workdir = tmp_path_factory.mktemp("crash")
    points = make_points(220, seed=1234)
    csv = str(workdir / "points.csv")
    write_csv(csv, points)
    pages = str(workdir / "crashed.pages")
    run_cli("ingest", csv, "--tree", pages, "--batch-size", str(BATCH),
            "--sync", "flush", "--crash-after", str(CRASH_AFTER),
            expect=1)
    return workdir, points, pages


@pytest.fixture(scope="module")
def query_side(tmp_path_factory):
    """The fixed Q tree both the baseline and recovered P query against."""
    return bulk_load(make_points(150, seed=4321))


class TestCrashRecovery:
    def test_wreckage_has_wal_but_stale_meta(self, crashed_workdir):
        workdir, __, pages = crashed_workdir
        wal = pages + ".wal"
        assert os.path.exists(wal) and os.path.getsize(wal) > 0
        # The sidecar still describes the *empty* pre-ingest tree: the
        # crash happened before the final metadata rewrite.
        with open(pages + ".meta.json") as handle:
            assert json.load(handle)["count"] == 0

    def test_recover_then_all_five_algorithms_byte_identical(
        self, crashed_workdir, query_side, tmp_path,
    ):
        workdir, points, pages = crashed_workdir
        proc = run_cli("recover", "--tree", pages)
        assert "recovered" in proc.stdout
        with open(pages + ".meta.json") as handle:
            metadata = json.load(handle)
        committed = CRASH_AFTER * BATCH
        assert metadata["count"] == committed
        assert metadata["generation"] == CRASH_AFTER

        store = FilePageStore(pages, metadata["page_size"])
        recovered = RTree.from_storage(PagedFile(store), metadata)
        validate(recovered)
        baseline = baseline_tree(points)
        assert len(recovered) == len(baseline) == committed
        assert sorted(
            (e.point, e.oid) for e in recovered.iter_leaf_entries()
        ) == sorted(
            (e.point, e.oid) for e in baseline.iter_leaf_entries()
        )

        for algorithm in ALGORITHMS:
            request = CPQRequest(k=10, algorithm=algorithm)
            expected = k_closest_pairs(baseline, query_side,
                                       request=request)
            got = k_closest_pairs(recovered, query_side,
                                  request=request)
            assert pairs_signature(got) == pairs_signature(expected), (
                f"{algorithm}: recovered tree disagrees with baseline"
            )
        store.close()

    def test_recovery_is_idempotent(self, crashed_workdir):
        __, __, pages = crashed_workdir
        run_cli("recover", "--tree", pages)
        before = open(pages + ".meta.json").read()
        run_cli("recover", "--tree", pages)
        assert open(pages + ".meta.json").read() == before

    def test_mmap_reopen_matches_buffered(self, crashed_workdir,
                                          query_side):
        __, __, pages = crashed_workdir
        run_cli("recover", "--tree", pages)
        with open(pages + ".meta.json") as handle:
            metadata = json.load(handle)
        request = CPQRequest(k=7, algorithm="heap")
        results = []
        for use_mmap in (False, True):
            store = FilePageStore(pages, metadata["page_size"],
                                  readonly=True, use_mmap=use_mmap)
            tree = RTree.from_storage(PagedFile(store), metadata)
            results.append(pairs_signature(
                k_closest_pairs(tree, query_side, request=request)
            ))
            store.close()
        assert results[0] == results[1]


class TestTornWal:
    def test_torn_tail_on_top_of_crash_still_recovers(self, tmp_path,
                                                      query_side):
        points = make_points(220, seed=77)
        csv = str(tmp_path / "points.csv")
        write_csv(csv, points)
        pages = str(tmp_path / "torn.pages")
        run_cli("ingest", csv, "--tree", pages, "--batch-size",
                str(BATCH), "--sync", "flush", "--crash-after",
                str(CRASH_AFTER), expect=1)
        torn = tear_file_tail(pages + ".wal", seed=9, max_bytes=64)
        assert torn > 0
        run_cli("recover", "--tree", pages)
        with open(pages + ".meta.json") as handle:
            metadata = json.load(handle)
        # Every batch whose COMMIT frame survived the tear replayed;
        # the tear is confined to the last ~64 bytes, so at worst the
        # final committed batch is lost.
        batches = metadata["generation"]
        assert batches in (CRASH_AFTER - 1, CRASH_AFTER)
        assert metadata["count"] == batches * BATCH
        store = FilePageStore(pages, metadata["page_size"])
        recovered = RTree.from_storage(PagedFile(store), metadata)
        validate(recovered)
        baseline = baseline_tree(points, batches=batches)
        request = CPQRequest(k=5, algorithm="heap")
        assert pairs_signature(
            k_closest_pairs(recovered, query_side, request=request)
        ) == pairs_signature(
            k_closest_pairs(baseline, query_side, request=request)
        )
        store.close()

    def test_clean_shutdown_keep_wal_replays_everything(self, tmp_path):
        points = make_points(120, seed=5)
        csv = str(tmp_path / "points.csv")
        write_csv(csv, points)
        pages = str(tmp_path / "clean.pages")
        run_cli("ingest", csv, "--tree", pages, "--batch-size", "30",
                "--keep-wal")
        # Replay the retained WAL onto a *cold* copy of nothing: the
        # log alone reconstructs the whole committed tree.
        tree, result = recover_tree(str(tmp_path / "fresh.pages"),
                                    pages + ".wal")
        assert result.batches_applied == 4
        assert tree is not None and len(tree) == 120
        assert sorted(
            (e.point, e.oid) for e in tree.iter_leaf_entries()
        ) == sorted(
            (tuple(p), oid) for oid, p in enumerate(points)
        )
        tree.file.store.close()
