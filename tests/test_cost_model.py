"""Tests for the analytical CPQ cost model."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    TreeShape,
    estimate_closest_pair_distance,
    estimate_cpq_accesses,
    interval_proximity_probability,
)
from repro.datasets import uniform_points
from repro.datasets.workspace import UNIT_WORKSPACE, Workspace, overlapping_workspace
from repro.rtree.bulk import bulk_load


class TestIntervalProximity:
    def test_certain_when_reach_covers_everything(self):
        p = interval_proximity_probability(
            (0.0, 1.0), 0.1, (0.0, 1.0), 0.1, reach=10.0
        )
        assert p == pytest.approx(1.0)

    def test_zero_when_unreachable(self):
        p = interval_proximity_probability(
            (0.0, 1.0), 0.1, (5.0, 6.0), 0.1, reach=0.5
        )
        assert p == 0.0

    def test_degenerate_centers(self):
        # Two fixed intervals: probability is an indicator.
        touching = interval_proximity_probability(
            (0.0, 0.0), 1.0, (1.5, 1.5), 1.0, reach=0.5
        )
        apart = interval_proximity_probability(
            (0.0, 0.0), 1.0, (3.0, 3.0), 1.0, reach=0.5
        )
        assert touching == pytest.approx(1.0)
        assert apart == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            interval_proximity_probability(
                (0.0, 1.0), 0.1, (0.0, 1.0), 0.1, reach=-1.0
            )
        with pytest.raises(ValueError):
            interval_proximity_probability(
                (0.0, 1.0), -0.1, (0.0, 1.0), 0.1, reach=0.0
            )

    @given(
        st.floats(0, 2), st.floats(0.01, 1), st.floats(0, 2),
        st.floats(0.01, 1), st.floats(0, 0.5), st.floats(0, 3),
    )
    @settings(max_examples=30)
    def test_matches_monte_carlo(
        self, a_lo, wa, b_lo, wb, length, reach
    ):
        range_a = (a_lo, a_lo + wa)
        range_b = (b_lo, b_lo + wb)
        predicted = interval_proximity_probability(
            range_a, length, range_b, length, reach
        )
        rng = random.Random(99)
        radius = length + reach
        hits = sum(
            1
            for __ in range(4000)
            if abs(
                rng.uniform(*range_a) - rng.uniform(*range_b)
            ) <= radius
        )
        assert predicted == pytest.approx(hits / 4000, abs=0.05)

    @given(st.floats(0, 1), st.floats(0, 1))
    def test_monotone_in_reach(self, r1, r2):
        lo, hi = min(r1, r2), max(r1, r2)
        p_lo = interval_proximity_probability(
            (0, 1), 0.2, (0.5, 1.5), 0.2, lo
        )
        p_hi = interval_proximity_probability(
            (0, 1), 0.2, (0.5, 1.5), 0.2, hi
        )
        assert p_hi >= p_lo - 1e-12


class TestTreeShape:
    def test_from_tree_counts_everything(self):
        points = uniform_points(3000, seed=5)
        tree = bulk_load(points)
        shape = TreeShape.from_tree(tree, UNIT_WORKSPACE)
        assert shape.height == tree.height
        assert sum(
            1 for level in shape.levels for __ in range(level.node_count)
        ) == tree.node_count()
        assert shape.point_count == 3000
        # leaf rectangles are small relative to the workspace
        assert shape.levels[0].avg_width < 0.5

    def test_from_empty_tree_rejected(self):
        from repro.rtree.tree import RTree

        with pytest.raises(ValueError):
            TreeShape.from_tree(RTree())

    def test_uniform_prediction_close_to_measurement(self):
        points = uniform_points(5000, seed=6)
        tree = bulk_load(points)
        measured = TreeShape.from_tree(tree, UNIT_WORKSPACE)
        predicted = TreeShape.uniform(5000, UNIT_WORKSPACE)
        leaf_m = measured.levels[0]
        leaf_p = predicted.levels[0]
        assert leaf_p.node_count == pytest.approx(
            leaf_m.node_count, rel=0.35
        )
        assert leaf_p.avg_width == pytest.approx(
            leaf_m.avg_width, rel=0.6
        )

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            TreeShape.uniform(0, UNIT_WORKSPACE)
        with pytest.raises(ValueError):
            TreeShape.uniform(10, UNIT_WORKSPACE, fanout=1.0)


class TestClosestDistanceEstimate:
    def test_disjoint_workspaces_use_the_gap(self):
        shape_p = TreeShape.uniform(1000, Workspace(0, 0, 1, 1))
        shape_q = TreeShape.uniform(1000, Workspace(3, 0, 4, 1))
        assert estimate_closest_pair_distance(
            shape_p, shape_q
        ) == pytest.approx(2.0)

    def test_overlapping_estimate_matches_simulation(self):
        n = 5000
        ws_q = overlapping_workspace(UNIT_WORKSPACE, 1.0)
        shape_p = TreeShape.uniform(n, UNIT_WORKSPACE)
        shape_q = TreeShape.uniform(n, ws_q)
        predicted = estimate_closest_pair_distance(shape_p, shape_q)
        rng = random.Random(1)
        trials = []
        for t in range(5):
            pts_p = uniform_points(n, seed=100 + t)
            pts_q = uniform_points(n, seed=200 + t)
            best = min(
                math.dist(p, q)
                for p, q in zip(pts_p[:2000], pts_q[:2000])
            )
            # crude lower-ish sample; just check the scale
            trials.append(best)
        # the prediction is within two orders of magnitude of a very
        # crude sample and, more importantly, positive and tiny
        assert 0 < predicted < 1e-3

    def test_more_points_means_smaller_distance(self):
        small = TreeShape.uniform(100, UNIT_WORKSPACE)
        big = TreeShape.uniform(100_000, UNIT_WORKSPACE)
        assert estimate_closest_pair_distance(
            big, big
        ) < estimate_closest_pair_distance(small, small)


class TestAccessEstimate:
    def _measure(self, overlap):
        from repro.core import CPQRequest, k_closest_pairs

        n = 5000
        ws_q = overlapping_workspace(UNIT_WORKSPACE, overlap)
        tree_p = bulk_load(uniform_points(n, seed=11))
        tree_q = bulk_load(uniform_points(n, ws_q, seed=22))
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=1, algorithm="heap"),
        )
        shape_p = TreeShape.from_tree(tree_p, UNIT_WORKSPACE)
        shape_q = TreeShape.from_tree(tree_q, ws_q)
        predicted = estimate_cpq_accesses(shape_p, shape_q)
        return predicted, result.stats.disk_accesses

    def test_prediction_tracks_overlap_growth(self):
        predictions, measurements = [], []
        for overlap in (0.0, 0.25, 1.0):
            predicted, measured = self._measure(overlap)
            predictions.append(predicted)
            measurements.append(measured)
        # both grow monotonically with overlap
        assert predictions == sorted(predictions)
        assert measurements == sorted(measurements)

    def test_prediction_within_order_of_magnitude_at_full_overlap(self):
        predicted, measured = self._measure(1.0)
        assert measured / 10 <= predicted <= measured * 10

    def test_default_t_is_the_distance_estimate(self):
        shape = TreeShape.uniform(1000, UNIT_WORKSPACE)
        default = estimate_cpq_accesses(shape, shape)
        explicit = estimate_cpq_accesses(
            shape, shape, t=estimate_closest_pair_distance(shape, shape)
        )
        assert default == explicit
