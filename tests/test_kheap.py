"""K-heap tests, including a hypothesis model check against sorting."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.kheap import KHeap
from repro.core.result import ClosestPair


def pair(distance, tag=0):
    return ClosestPair(distance, (0.0, 0.0), (distance, 0.0), tag, tag)


class TestKHeap:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KHeap(0)

    def test_threshold_infinite_until_full(self):
        heap = KHeap(3)
        heap.offer(pair(1.0))
        heap.offer(pair(2.0))
        assert heap.threshold == math.inf
        heap.offer(pair(3.0))
        assert heap.threshold == 3.0

    def test_offer_replaces_worst(self):
        heap = KHeap(2)
        heap.offer(pair(5.0))
        heap.offer(pair(3.0))
        assert heap.offer(pair(1.0))
        assert heap.threshold == 3.0
        assert [p.distance for p in heap.sorted_pairs()] == [1.0, 3.0]

    def test_offer_rejects_worse(self):
        heap = KHeap(2)
        heap.offer(pair(1.0))
        heap.offer(pair(2.0))
        assert not heap.offer(pair(9.0))
        assert len(heap) == 2

    def test_equal_distance_not_admitted_when_full(self):
        heap = KHeap(1)
        heap.offer(pair(2.0, tag=1))
        assert not heap.offer(pair(2.0, tag=2))
        assert heap.sorted_pairs()[0].p_oid == 1

    def test_k_one(self):
        heap = KHeap(1)
        for d in (9.0, 4.0, 6.0, 1.0):
            heap.offer(pair(d))
        assert heap.threshold == 1.0

    def test_iteration(self):
        heap = KHeap(3)
        for d in (3.0, 1.0, 2.0):
            heap.offer(pair(d))
        assert sorted(p.distance for p in heap) == [1.0, 2.0, 3.0]

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            max_size=60,
        ),
        st.integers(min_value=1, max_value=12),
    )
    def test_model_matches_sorted_prefix(self, distances, k):
        heap = KHeap(k)
        for d in distances:
            heap.offer(pair(d))
        got = [p.distance for p in heap.sorted_pairs()]
        want = sorted(distances)[:k]
        assert got == want
