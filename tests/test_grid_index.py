"""The grid-file index kind: structural validity and query parity.

:func:`repro.rtree.grid.grid_load` packs leaves in uniform-grid cell
order instead of STR slab order, but the product must still be a
legal R-tree in the same page format -- every invariant holds, every
point survives, and every CPQ algorithm returns exactly the same
distances as over an STR-packed or dynamically built tree.
"""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.core.api import CPQRequest, k_closest_pairs
from repro.query.range_query import range_query
from repro.geometry.mbr import MBR
from repro.rtree.bulk import bulk_load
from repro.rtree.grid import (
    grid_cells_per_axis,
    grid_load,
    grid_occupancy,
)
from repro.rtree.validate import validate
from tests.conftest import brute_force_pairs


def _points(n, seed=7, cluster=False):
    rng = random.Random(seed)
    if not cluster:
        return [(rng.random(), rng.random()) for __ in range(n)]
    centers = [(rng.random(), rng.random()) for __ in range(4)]
    return [
        (min(1.0, max(0.0, cx + rng.gauss(0, 0.01))),
         min(1.0, max(0.0, cy + rng.gauss(0, 0.01))))
        for __ in range(n)
        for cx, cy in (centers[rng.randrange(4)],)
    ]


class TestStructure:
    @pytest.mark.parametrize("n", [1, 5, 50, 500, 2000])
    def test_invariants_hold(self, n):
        tree = grid_load(_points(n))
        summary = validate(tree)
        assert summary.entries == n
        assert len(tree) == n

    def test_clustered_data_still_valid(self):
        tree = grid_load(_points(800, cluster=True))
        assert validate(tree).entries == 800

    def test_all_points_preserved(self):
        points = _points(700, seed=3)
        tree = grid_load(points)
        found = range_query(tree, MBR((0.0, 0.0), (1.0, 1.0)))
        assert sorted(e.point for e in found) == sorted(points)

    def test_oids_preserved(self):
        points = _points(120)
        oids = [i * 7 + 1 for i in range(120)]
        tree = grid_load(points, oids)
        found = range_query(tree, MBR((0.0, 0.0), (1.0, 1.0)))
        assert sorted(e.oid for e in found) == sorted(oids)

    def test_height_matches_str_packing_shape(self):
        # Same per-node fill policy as bulk_load, so the grid tree is
        # never taller than one level above the STR tree.
        points = _points(1500)
        assert abs(grid_load(points).height
                   - bulk_load(points).height) <= 1

    @given(st.integers(min_value=1, max_value=300))
    def test_any_cardinality_is_valid(self, n):
        tree = grid_load(_points(n, seed=n))
        assert validate(tree).entries == n

    def test_explicit_cells_per_axis(self):
        points = _points(400)
        tree = grid_load(points, cells_per_axis=5)
        assert validate(tree).entries == 400

    def test_empty_input_gives_empty_tree(self):
        # Matches bulk_load: no points is a legal (empty) tree, not an
        # error -- the catalog registers datasets before loading them.
        tree = grid_load([])
        assert len(tree) == 0
        assert tree.height == 0
        assert validate(tree).entries == 0


class TestOccupancy:
    def test_counts_sum_to_n(self):
        points = _points(300)
        cells = grid_cells_per_axis(300, 7, 2)
        occupancy = grid_occupancy(points, cells)
        assert sum(occupancy.values()) == 300

    def test_single_cell_degenerate(self):
        points = [(0.5, 0.5)] * 20
        occupancy = grid_occupancy(points, 4)
        assert sum(occupancy.values()) == 20
        assert len(occupancy) == 1


class TestQueryParity:
    @pytest.mark.parametrize(
        "algorithm", ["naive", "exh", "sim", "std", "heap"]
    )
    def test_cpq_distances_match_brute_force(self, algorithm):
        pts_p = _points(250, seed=11)
        pts_q = _points(220, seed=12)
        tree_p = grid_load(pts_p)
        tree_q = grid_load(pts_q)
        result = k_closest_pairs(
            tree_p, tree_q, request=CPQRequest(k=10, algorithm=algorithm)
        )
        expected = brute_force_pairs(pts_p, pts_q, 10)
        assert [
            pytest.approx(p.distance) for p in result.pairs
        ] == expected

    def test_grid_and_str_trees_agree_exactly(self):
        pts_p = _points(400, seed=21, cluster=True)
        pts_q = _points(350, seed=22)
        request = CPQRequest(k=12, algorithm="heap")
        from_grid = k_closest_pairs(
            grid_load(pts_p), grid_load(pts_q), request=request
        )
        from_str = k_closest_pairs(
            bulk_load(pts_p), bulk_load(pts_q), request=request
        )
        assert from_grid.pairs == from_str.pairs

    def test_knn_over_grid_tree(self):
        points = _points(300, seed=31)
        tree = grid_load(points)
        from repro.query.knn import nearest_neighbors

        query = (0.25, 0.75)
        found = nearest_neighbors(tree, query, k=5)
        expected = sorted(math.dist(query, p) for p in points)[:5]
        assert [pytest.approx(d) for d, __ in found] == expected
