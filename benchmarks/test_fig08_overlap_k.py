"""Regenerates Figure 8: the overlap x K surface for STD and HEAP.

Paper claim: STD and HEAP are nearly equivalent and 5-50x faster than
EXH below ~10 % overlap; past 50 % overlap HEAP saves 15-35 % with the
gap growing in K.
"""


def test_fig08_overlap_by_k(run_and_record):
    table = run_and_record("fig08")
    ks = sorted(set(table.column("k")))
    rel = table.value("relative_to_exh_pct", overlap_pct=0, k=ks[0],
                      algorithm="HEAP")
    assert rel < 100.0
