#!/usr/bin/env python
"""Benchmarks for the live-mutation storage layer.

Three measurements, each tied to a design decision of
``docs/STORAGE.md``:

* **mmap warm reads**: page reads through ``FilePageStore`` with
  ``use_mmap=True`` (one slice of a shared mapping) against the
  buffered ``seek`` + ``read`` path, over a page-cache-warm file.
  This is the number the ``use_mmap`` config flag must justify.
* **ingest throughput**: WAL-protected batched inserts at several
  batch sizes, in points/second.  Shows what grouping commits buys:
  one generation bump, one snapshot publication and one WAL sync per
  batch instead of per insert.
* **recovery replay**: wall time for ``recover_tree`` to replay the
  ingested WAL onto a cold page file.

The printed table is Markdown (paste into ``docs/BENCHMARKS.md``).
Exit status is the CI gate: nonzero when the mmap warm-read path is
slower than ``--min-speedup`` times the buffered one (default 1.0:
mmap must at least break even to keep the flag honest).

Usage::

    PYTHONPATH=src python benchmarks/bench_mutation.py           # full
    PYTHONPATH=src python benchmarks/bench_mutation.py --quick   # CI
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import tempfile
import time

from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree, RTreeConfig
from repro.storage.page import PageLayout
from repro.storage.paged_file import PagedFile
from repro.storage.store import FilePageStore
from repro.storage.wal import WriteAheadLog, recover_tree


def _random_points(n: int, seed: int):
    rng = random.Random(seed)
    return [(rng.random(), rng.random()) for __ in range(n)]


def bench_mmap_reads(workdir: str, n: int, reads: int,
                     repeats: int) -> dict:
    """Warm page reads: mmap slice vs buffered seek+read."""
    pages_path = os.path.join(workdir, "mmap.pages")
    store = FilePageStore(pages_path, 1024)
    tree = bulk_load(_random_points(n, seed=5),
                     file=PagedFile(store, page_size=1024))
    page_ids = [node.page_id for node in tree.iter_nodes()]
    store.flush()
    store.close()

    def read_loop(use_mmap: bool) -> float:
        handle = FilePageStore(pages_path, 1024, readonly=True,
                               use_mmap=use_mmap)
        # Touch everything once so both paths run against a warm OS
        # page cache; the measured difference is pure per-read
        # overhead, not device latency.
        for page_id in page_ids:
            handle.read(page_id)
        best = float("inf")
        for __ in range(repeats):
            start = time.perf_counter()
            for i in range(reads):
                handle.read(page_ids[i % len(page_ids)])
            best = min(best, time.perf_counter() - start)
        handle.close()
        return best

    buffered = read_loop(use_mmap=False)
    mapped = read_loop(use_mmap=True)
    return {
        "buffered_s": buffered,
        "mmap_s": mapped,
        "speedup": buffered / mapped if mapped else float("nan"),
        "reads": reads,
        "pages": len(page_ids),
    }


def bench_ingest(workdir: str, n: int, batch_sizes, sync: str) -> dict:
    """WAL-protected batched insert throughput per batch size."""
    points = _random_points(n, seed=17)
    rows = []
    for batch_size in batch_sizes:
        prefix = os.path.join(workdir, f"ingest-{batch_size}")
        store = FilePageStore(prefix + ".pages", 1024)
        tree = RTree(RTreeConfig(layout=PageLayout(page_size=1024)),
                     PagedFile(store, page_size=1024))
        wal = WriteAheadLog(prefix + ".wal", sync_mode=sync)
        tree.enable_live_mutation(wal)
        start = time.perf_counter()
        for offset in range(0, len(points), batch_size):
            with tree.batch():
                for i, point in enumerate(points[offset:offset + batch_size]):
                    tree.insert(point, offset + i)
        elapsed = time.perf_counter() - start
        store.flush()
        wal.close()
        store.close()
        rows.append({
            "batch_size": batch_size,
            "points": len(points),
            "elapsed_s": elapsed,
            "points_per_s": len(points) / elapsed if elapsed else 0.0,
            "generations": tree.generation,
        })
    return {"sync": sync, "rows": rows}


def bench_recovery(workdir: str, n: int, batch_size: int) -> dict:
    """Replay time of a full ingest WAL onto a cold page file."""
    prefix = os.path.join(workdir, "recover")
    store = FilePageStore(prefix + ".pages", 1024)
    tree = RTree(RTreeConfig(layout=PageLayout(page_size=1024)),
                 PagedFile(store, page_size=1024))
    wal = WriteAheadLog(prefix + ".wal", sync_mode="none")
    tree.enable_live_mutation(wal)
    points = _random_points(n, seed=23)
    for offset in range(0, len(points), batch_size):
        with tree.batch():
            for i, point in enumerate(points[offset:offset + batch_size]):
                tree.insert(point, offset + i)
    store.flush()
    wal.close()
    store.close()

    start = time.perf_counter()
    recovered, result = recover_tree(prefix + ".pages", prefix + ".wal",
                                     page_size=1024)
    elapsed = time.perf_counter() - start
    assert recovered is not None and len(recovered) == n
    recovered.file.store.close()
    return {
        "points": n,
        "batches": result.batches_applied,
        "pages_written": result.pages_written,
        "replay_s": elapsed,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="mmap read path, WAL-batched ingest and recovery "
                    "replay benchmarks for the live-mutation layer",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller loops (CI)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail (exit 1) when warm mmap reads are "
                             "slower than this multiple of the "
                             "buffered path (default 1.0)")
    parser.add_argument("--json", default=None,
                        help="also write the numbers as JSON here")
    args = parser.parse_args(argv)

    n = 1_500 if args.quick else 8_000
    reads = 20_000 if args.quick else 200_000
    repeats = 2 if args.quick else 3
    ingest_n = 1_000 if args.quick else 5_000
    batch_sizes = (1, 16, 128)

    workdir = tempfile.mkdtemp(prefix="bench-mutation-")
    try:
        mmap_reads = bench_mmap_reads(workdir, n, reads, repeats)
        ingest = bench_ingest(workdir, ingest_n, batch_sizes,
                              sync="flush")
        recovery = bench_recovery(workdir, ingest_n, batch_size=64)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    print(f"live-mutation benchmarks (best of {repeats})\n")
    print("| read path | time | per read | speedup |")
    print("|---|---|---|---|")
    print(f"| buffered seek+read ({mmap_reads['reads']} warm reads) "
          f"| {mmap_reads['buffered_s'] * 1e3:.1f} ms "
          f"| {mmap_reads['buffered_s'] / mmap_reads['reads'] * 1e6:.2f} us "
          f"| 1.00x |")
    print(f"| mmap slice ({mmap_reads['reads']} warm reads) "
          f"| {mmap_reads['mmap_s'] * 1e3:.1f} ms "
          f"| {mmap_reads['mmap_s'] / mmap_reads['reads'] * 1e6:.2f} us "
          f"| {mmap_reads['speedup']:.2f}x |")
    print()
    print(f"| ingest (WAL sync={ingest['sync']}) | batch | points/s "
          f"| commits |")
    print("|---|---|---|---|")
    for row in ingest["rows"]:
        print(f"| {row['points']} points | {row['batch_size']} "
              f"| {row['points_per_s']:.0f} | {row['generations']} |")
    print()
    print(f"recovery: {recovery['batches']} committed batches, "
          f"{recovery['pages_written']} page images replayed in "
          f"{recovery['replay_s'] * 1e3:.1f} ms "
          f"({recovery['points']} points)")

    if args.json:
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w") as handle:
            json.dump({"mmap": mmap_reads, "ingest": ingest,
                       "recovery": recovery}, handle, indent=2)
        print(f"\nwrote {args.json}")

    if mmap_reads["speedup"] < args.min_speedup:
        print(f"FAIL: mmap warm-read speedup {mmap_reads['speedup']:.2f}x "
              f"below --min-speedup {args.min_speedup}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
