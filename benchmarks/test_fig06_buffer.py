"""Regenerates Figure 6: LRU buffer sweep for the 1-CP algorithms.

Paper claim: EXH and SIM gain up to 2-3x from a growing buffer but
never reach STD/HEAP at 0 % overlap; at 100 % overlap STD also gains
while HEAP stays nearly flat, losing its lead past B = 4 pages.
"""


def test_fig06_lru_buffer(run_and_record):
    table = run_and_record("fig06")
    for combo in set(table.column("combo")):
        cold = table.value("disk_accesses", combo=combo, overlap_pct=100,
                           buffer_pages=0, algorithm="EXH")
        warm = table.value("disk_accesses", combo=combo, overlap_pct=100,
                           buffer_pages=256, algorithm="EXH")
        assert warm < cold
