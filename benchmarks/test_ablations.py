"""Ablations of the reproduction's design choices (beyond the paper's
own figures).

Each ablation isolates one choice DESIGN.md calls out:

* the Section 3.8 MAXMAXDIST accumulation bound for K > 1,
* tree construction (STR packing vs dynamic R* insertion),
* the split policy (R* vs Guttman quadratic),
* the buffer replacement policy (LRU vs FIFO / LFU / CLOCK).
"""

import random

import pytest

from repro.core import CPQRequest, k_closest_pairs
from repro.datasets import (
    UNIT_WORKSPACE,
    overlapping_workspace,
    uniform_points,
)
from repro.experiments.report import Table
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree, RTreeConfig
from repro.storage.paged_file import PagedFile
from repro.storage.policies import BUFFER_POLICIES

N = 8_000


@pytest.fixture(scope="module")
def point_sets():
    ws_q = overlapping_workspace(UNIT_WORKSPACE, 0.5)
    return (
        uniform_points(N, seed=31),
        uniform_points(N, ws_q, seed=32),
    )


def _print_and_check(table, check):
    print()
    print(table.render())
    check(table)


def test_ablation_maxmax_k_pruning(benchmark, point_sets):
    """Effect of the MAXMAXDIST accumulation bound (Section 3.8)."""
    pts_p, pts_q = point_sets
    tree_p = bulk_load(pts_p)
    tree_q = bulk_load(pts_q)

    def run():
        table = Table(
            title="Ablation: MAXMAXDIST K-pruning (Section 3.8)",
            columns=("algorithm", "k", "pruning", "disk_accesses"),
            notes=(
                "The accumulation bound may only remove work; both "
                "modes return identical results."
            ),
        )
        for algorithm in ("sim", "std", "heap"):
            for k in (10, 100, 1000):
                for pruning in (True, False):
                    result = k_closest_pairs(
                        tree_p,
                        tree_q,
                        request=CPQRequest(
                            k=k,
                            algorithm=algorithm,
                            maxmax_pruning=pruning,
                        ),
                    )
                    table.add(
                        algorithm.upper(), k,
                        "maxmax" if pruning else "kheap-only",
                        result.stats.disk_accesses,
                    )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    def check(table):
        for algorithm in ("SIM", "STD", "HEAP"):
            for k in (10, 100, 1000):
                on = table.value("disk_accesses", algorithm=algorithm,
                                 k=k, pruning="maxmax")
                off = table.value("disk_accesses", algorithm=algorithm,
                                  k=k, pruning="kheap-only")
                assert on <= off

    _print_and_check(table, check)


def test_ablation_tree_construction(benchmark, point_sets):
    """STR bulk loading vs dynamic R* insertion."""
    pts_p, pts_q = point_sets

    def run():
        table = Table(
            title=(
                "Ablation: tree construction "
                "(STR vs Hilbert packing vs dynamic R*)"
            ),
            columns=("build", "nodes_p", "algorithm", "disk_accesses"),
            notes=(
                "Dynamic R* trees have slightly more, overlapping "
                "nodes; query answers are identical."
            ),
        )
        from repro.rtree.hilbert import hilbert_bulk_load

        trees = {}
        trees["str"] = (bulk_load(pts_p), bulk_load(pts_q))
        trees["hilbert"] = (
            hilbert_bulk_load(pts_p), hilbert_bulk_load(pts_q)
        )
        dyn_p = RTree()
        dyn_q = RTree()
        for oid, point in enumerate(pts_p):
            dyn_p.insert(tuple(point), oid)
        for oid, point in enumerate(pts_q):
            dyn_q.insert(tuple(point), oid)
        trees["dynamic"] = (dyn_p, dyn_q)
        for build, (tree_p, tree_q) in trees.items():
            for algorithm in ("std", "heap"):
                result = k_closest_pairs(
                    tree_p,
                    tree_q,
                    request=CPQRequest(k=100, algorithm=algorithm),
                )
                table.add(
                    build, tree_p.node_count(), algorithm.upper(),
                    result.stats.disk_accesses,
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    _print_and_check(
        table, lambda t: [None for v in t.column("disk_accesses")
                          if not v > 0]
    )


def test_ablation_split_policy(benchmark):
    """R* split vs Guttman quadratic split (paper Section 2.2 rationale:
    'the R*-tree is considered the most efficient variant')."""
    rng = random.Random(3)
    pts_p = [(rng.random(), rng.random()) for __ in range(3000)]
    pts_q = [(rng.uniform(0.5, 1.5), rng.random()) for __ in range(3000)]

    def run():
        table = Table(
            title="Ablation: split policy (R* vs Guttman quadratic)",
            columns=("variant", "nodes_p", "algorithm", "disk_accesses"),
        )
        for variant in ("rstar", "guttman"):
            config = RTreeConfig(variant=variant)
            tree_p = RTree(config)
            tree_q = RTree(config)
            for oid, point in enumerate(pts_p):
                tree_p.insert(point, oid)
            for oid, point in enumerate(pts_q):
                tree_q.insert(point, oid)
            for algorithm in ("std", "heap"):
                result = k_closest_pairs(
                    tree_p,
                    tree_q,
                    request=CPQRequest(k=100, algorithm=algorithm),
                )
                table.add(
                    variant, tree_p.node_count(), algorithm.upper(),
                    result.stats.disk_accesses,
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    _print_and_check(
        table, lambda t: [None for v in t.column("disk_accesses")
                          if not v > 0]
    )


def test_ablation_buffer_policy(benchmark, point_sets):
    """LRU vs FIFO / LFU / CLOCK replacement under a small buffer."""
    pts_p, pts_q = point_sets

    def run():
        table = Table(
            title="Ablation: buffer replacement policy (B = 32)",
            columns=("policy", "algorithm", "disk_accesses",
                     "buffer_hits"),
            notes="Policy affects cost only; results are identical.",
        )
        for policy in sorted(BUFFER_POLICIES):
            tree_p = bulk_load(pts_p, file=PagedFile(
                buffer_capacity=16, buffer_policy=policy))
            tree_q = bulk_load(pts_q, file=PagedFile(
                buffer_capacity=16, buffer_policy=policy))
            for algorithm in ("exh", "std"):
                result = k_closest_pairs(
                    tree_p,
                    tree_q,
                    request=CPQRequest(
                        k=100,
                        algorithm=algorithm,
                        reset_stats=True,
                    ),
                )
                table.add(
                    policy.upper(), algorithm.upper(),
                    result.stats.disk_accesses,
                    result.stats.buffer_hits,
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    _print_and_check(
        table,
        lambda t: [None for v in t.column("buffer_hits") if not v >= 0],
    )
