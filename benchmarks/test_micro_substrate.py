"""Micro-benchmarks of the substrate hot paths (timed, multi-round).

Unlike the figure regenerations (single-shot macro experiments), these
use pytest-benchmark conventionally to time the operations the CPQ
algorithms are built from: metric matrices, node (de)serialisation,
tree construction and the substrate queries.
"""

import numpy as np
import pytest

from repro.datasets import uniform_points
from repro.geometry.vectorized import (
    pairwise_mindist,
    pairwise_minmaxdist,
    pairwise_point_distances,
)
from repro.query import nearest_neighbors, range_query
from repro.geometry.mbr import MBR
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree
from repro.storage.page import PageLayout
from repro.storage.serializer import NodeSerializer

M = 21  # paper node capacity


@pytest.fixture(scope="module")
def rect_arrays():
    rng = np.random.default_rng(0)
    lo = rng.random((M, 2))
    hi = lo + rng.random((M, 2)) * 0.05
    return lo, hi


@pytest.fixture(scope="module")
def loaded_tree():
    return bulk_load(uniform_points(20_000, seed=9))


def test_bench_pairwise_mindist(benchmark, rect_arrays):
    lo, hi = rect_arrays
    benchmark(pairwise_mindist, lo, hi, lo, hi)


def test_bench_pairwise_minmaxdist(benchmark, rect_arrays):
    lo, hi = rect_arrays
    benchmark(pairwise_minmaxdist, lo, hi, lo, hi)


def test_bench_leaf_distance_matrix(benchmark):
    rng = np.random.default_rng(1)
    pts_a = rng.random((M, 2))
    pts_b = rng.random((M, 2))
    benchmark(pairwise_point_distances, pts_a, pts_b)


def test_bench_node_serialize_roundtrip(benchmark):
    serializer = NodeSerializer(PageLayout(page_size=1024))
    entries = [((float(i), float(-i)), i) for i in range(M)]

    def roundtrip():
        return serializer.deserialize(serializer.serialize_leaf(entries))

    benchmark(roundtrip)


def test_bench_str_bulk_load(benchmark):
    points = uniform_points(5_000, seed=2)
    benchmark.pedantic(bulk_load, args=(points,), rounds=3, iterations=1)


def test_bench_dynamic_insert(benchmark):
    points = [tuple(p) for p in uniform_points(1_000, seed=3)]

    def build():
        tree = RTree()
        for oid, point in enumerate(points):
            tree.insert(point, oid)
        return tree

    benchmark.pedantic(build, rounds=3, iterations=1)


def test_bench_knn(benchmark, loaded_tree):
    benchmark(nearest_neighbors, loaded_tree, (0.5, 0.5), 10)


def test_bench_range_query(benchmark, loaded_tree):
    window = MBR((0.4, 0.4), (0.6, 0.6))
    benchmark(range_query, loaded_tree, window)
