"""Regenerates Figure 3: fix-at-leaves vs fix-at-root (different heights).

Paper claim: fix-at-root is better for SIM and HEAP (10-40 % gains);
for STD the strategies are comparable except at 0 % overlap, where
fix-at-leaves wins clearly.
"""


def test_fig03_height_strategies(run_and_record):
    table = run_and_record("fig03")
    assert set(table.column("strategy")) == {
        "fix-at-leaves", "fix-at-root",
    }
    assert all(v > 0 for v in table.column("disk_accesses"))
