"""Service throughput smoke benchmark.

Measures end-to-end queries/sec of :class:`repro.service.QueryService`
at 1, 4 and 8 workers on an I/O-bound workload: small per-tree buffers
plus a simulated per-miss disk latency (which sleeps outside the buffer
lock and releases the GIL), so worker threads overlap their waits the
way threads overlap real disk seeks.  The scaling assertion backs the
ISSUE acceptance criterion: >= 2x queries/sec at 4 workers vs 1.

Skipped under CI (marker + env guard); run locally with

    PYTHONPATH=src python -m pytest benchmarks/test_service_throughput.py -s
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.rtree.bulk import bulk_load
from repro.service import CPQRequest, KNNRequest, QueryService

pytestmark = [
    pytest.mark.service_benchmark,
    pytest.mark.skipif(
        "CI" in os.environ,
        reason="throughput smoke benchmark is wall-clock sensitive; "
        "not meaningful on shared CI runners",
    ),
]

POINTS_PER_TREE = 3000
BUFFER_PAGES = 4          # per tree: almost every node access misses
READ_LATENCY = 0.0005     # 0.5 ms simulated seek per miss
REQUESTS = 96
WORKER_COUNTS = (1, 4, 8)


def build_trees():
    rng = random.Random(0x5EED)
    tree_p = bulk_load([(rng.random(), rng.random())
                        for __ in range(POINTS_PER_TREE)])
    tree_q = bulk_load([(rng.random(), rng.random())
                        for __ in range(POINTS_PER_TREE)])
    for tree in (tree_p, tree_q):
        tree.file.set_buffer_capacity(BUFFER_PAGES)
        tree.file.read_latency = READ_LATENCY
    return tree_p, tree_q


def build_requests():
    """Distinct requests so the result cache cannot collapse the work;
    the workload is bounded by (simulated) disk latency instead."""
    rng = random.Random(0xD15C)
    requests = []
    for i in range(REQUESTS):
        if i % 4 == 0:
            requests.append(CPQRequest(pair="bench", k=1 + i % 8,
                                       use_cache=False))
        else:
            requests.append(KNNRequest(
                pair="bench",
                point=(rng.random(), rng.random()),
                k=5,
                use_cache=False,
            ))
    return requests


def measure_qps(tree_p, tree_q, requests, workers: int) -> float:
    service = QueryService(workers=workers, queue_size=len(requests) + 8,
                           cache_size=0)
    service.register_pair("bench", tree_p, tree_q)
    try:
        start = time.perf_counter()
        responses = service.run_batch(requests)
        elapsed = time.perf_counter() - start
    finally:
        service.close()
    assert all(r.status == "ok" for r in responses)
    return len(requests) / elapsed


def test_service_throughput_scales_with_workers(results_dir):
    tree_p, tree_q = build_trees()
    requests = build_requests()

    # Warm the (tiny) tree buffers identically for every worker count.
    measure_qps(tree_p, tree_q, requests[:8], workers=1)

    qps = {}
    for workers in WORKER_COUNTS:
        qps[workers] = measure_qps(tree_p, tree_q, requests, workers)

    lines = [
        "service throughput smoke benchmark",
        f"  trees: {POINTS_PER_TREE} points each, "
        f"buffer {BUFFER_PAGES} pages/tree, "
        f"read latency {READ_LATENCY * 1000:.2f} ms/miss",
        f"  workload: {len(requests)} mixed K-CPQ / K-NN requests "
        "(result cache off)",
    ]
    for workers in WORKER_COUNTS:
        speedup = qps[workers] / qps[WORKER_COUNTS[0]]
        lines.append(
            f"  workers={workers}: {qps[workers]:7.1f} queries/sec "
            f"({speedup:.2f}x)"
        )
    output = "\n".join(lines)
    print()
    print(output)
    with open(os.path.join(results_dir, "service_throughput.txt"),
              "w") as handle:
        handle.write(output + "\n")

    assert qps[4] >= 2.0 * qps[1], (
        f"expected >= 2x throughput at 4 workers: {qps}"
    )
