"""Steady-state workload experiment (beyond the paper).

The paper measures cold-cache queries (buffers reset per query).  A
production system answers *streams* of queries against warm buffers;
this experiment runs a batch of K-CPQ queries over rotating query
regions without resetting the buffer, reporting amortised disk
accesses per query.  The shape to expect: the first query pays the
cold cost; subsequent queries amortise the shared upper tree levels,
and the effect grows with the buffer.
"""

import pytest

from repro.core import CPQRequest, k_closest_pairs
from repro.datasets import UNIT_WORKSPACE, Workspace, uniform_points
from repro.experiments.report import Table
from repro.rtree.bulk import bulk_load

N = 10_000
QUERIES = 20


def test_steady_state_workload(benchmark):
    tree_p = bulk_load(uniform_points(N, seed=81))

    # Rotating partner sets: small patches sweeping across P's space.
    partners = []
    for i in range(QUERIES):
        x = (i % 5) * 0.2
        y = (i // 5 % 4) * 0.25
        patch = Workspace(x, y, x + 0.2, y + 0.25)
        partners.append(
            bulk_load(uniform_points(400, patch, seed=90 + i))
        )

    def run():
        table = Table(
            title=(
                f"Steady state: {QUERIES} K-CPQ queries, warm vs cold "
                f"buffers (P = {N} points)"
            ),
            columns=("buffer_pages", "mode", "total_accesses",
                     "per_query"),
            notes=(
                "Warm buffers amortise the shared upper levels of P's "
                "tree across the query stream."
            ),
        )
        for buffer_pages in (0, 16, 64, 256):
            for warm in (False, True):
                tree_p.file.set_buffer_capacity(buffer_pages // 2)
                tree_p.file.reset_for_query()
                total = 0
                for tree_q in partners:
                    tree_q.file.set_buffer_capacity(buffer_pages // 2)
                    tree_q.file.reset_for_query()
                    if not warm:
                        tree_p.file.reset_for_query()
                    # reset_stats=False keeps P's buffer warm across
                    # the stream; per-query cost is the P-side delta
                    # plus Q's (freshly reset) counter.
                    before_p = tree_p.stats.disk_reads
                    k_closest_pairs(
                        tree_p,
                        tree_q,
                        request=CPQRequest(
                            k=10,
                            algorithm="std",
                            reset_stats=False,
                        ),
                    )
                    total += (
                        tree_p.stats.disk_reads - before_p
                        + tree_q.stats.disk_reads
                    )
                table.add(
                    buffer_pages,
                    "warm" if warm else "cold",
                    total,
                    round(total / QUERIES, 1),
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(table.render())
    # With any real buffer, the warm stream must not cost more than
    # the cold one; with no buffer the two coincide.
    for buffer_pages in (16, 64, 256):
        cold = table.value("total_accesses", buffer_pages=buffer_pages,
                           mode="cold")
        warm = table.value("total_accesses", buffer_pages=buffer_pages,
                           mode="warm")
        assert warm <= cold
    assert table.value(
        "total_accesses", buffer_pages=0, mode="warm"
    ) == table.value("total_accesses", buffer_pages=0, mode="cold")
