"""Regenerates Figure 9: buffer size x K for SIM/STD/HEAP at 0% overlap.

Paper claim: SIM and STD benefit strongly from the buffer (up to an
order of magnitude for the largest K); HEAP responds only for large K,
so STD overtakes HEAP once B exceeds ~4 pages.
"""


def test_fig09_buffer_by_k(run_and_record):
    table = run_and_record("fig09")
    ks = sorted(set(table.column("k")))
    cold = table.value("disk_accesses", buffer_pages=0, k=ks[-1],
                       algorithm="STD")
    warm = table.value("disk_accesses", buffer_pages=256, k=ks[-1],
                       algorithm="STD")
    assert warm <= cold
