"""Regenerates Figure 7: the four K-CP algorithms for varying K, B=0.

Paper claim: cost grows sharply past K around 100-1000.  At 0 %
overlap STD/HEAP are 10-50x faster than EXH (SIM gains little); at
100 % overlap only HEAP clearly improves on EXH (10-30 %).
"""


def test_fig07_varying_k(run_and_record):
    table = run_and_record("fig07")
    ks = sorted(set(table.column("k")))
    # HEAP beats EXH at full overlap for the largest K (the 10-30% claim)
    exh = table.value("disk_accesses", overlap_pct=100, k=ks[-1],
                      algorithm="EXH")
    heap = table.value("disk_accesses", overlap_pct=100, k=ks[-1],
                       algorithm="HEAP")
    assert heap < exh
