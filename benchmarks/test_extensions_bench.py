"""Benchmarks for the Section 6 extensions.

* Self-CPQ: cost scaling over N and K.
* Semi-CPQ: the leaf-amortised batch algorithm against the
  naive formulation (one independent nearest-neighbour query per P
  point) -- an ablation of the leaf batching.
* Multi-way CPQ: chain vs clique aggregation across 2-4 data sets.
"""

import pytest

from repro.datasets import sequoia_like, uniform_points
from repro.experiments.report import Table
from repro.extensions import (
    multiway_closest_tuples,
    self_k_closest_pairs,
    semi_closest_pairs,
)
from repro.query import nearest_neighbors
from repro.rtree.bulk import bulk_load


def test_self_cpq_scaling(benchmark):
    def run():
        table = Table(
            title="Self-CPQ: disk accesses over N and K",
            columns=("n", "k", "disk_accesses", "max_queue"),
        )
        for n in (2_000, 8_000, 16_000):
            tree = bulk_load(sequoia_like(n, seed=61))
            for k in (1, 10, 100):
                result = self_k_closest_pairs(tree, k=k)
                table.add(n, k, result.stats.disk_accesses,
                          result.stats.max_queue_size)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(table.render())
    assert all(v > 0 for v in table.column("disk_accesses"))


def test_semi_cpq_vs_naive_nn_loop(benchmark):
    n_p, n_q = 2_000, 10_000
    tree_p = bulk_load(uniform_points(n_p, seed=62))
    tree_q = bulk_load(uniform_points(n_q, seed=63))

    def run():
        table = Table(
            title=(
                f"Semi-CPQ ablation: batch vs per-point 1-NN "
                f"({n_p} x {n_q})"
            ),
            columns=("method", "disk_accesses"),
            notes=(
                "One Q traversal per P leaf serves up to M points, "
                "amortising the search ~M-fold."
            ),
        )
        result = semi_closest_pairs(tree_p, tree_q)
        table.add("batch (leaf-amortised)", result.stats.disk_accesses)

        tree_p.file.reset_for_query()
        tree_q.file.reset_for_query()
        for entry in tree_p.iter_leaf_entries():
            nearest_neighbors(tree_q, entry.point, k=1)
        naive_cost = (
            tree_q.stats.disk_reads + tree_p.stats.disk_reads
        )
        table.add("naive per-point 1-NN", naive_cost)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(table.render())
    batch = table.value("disk_accesses", method="batch (leaf-amortised)")
    naive = table.value("disk_accesses", method="naive per-point 1-NN")
    assert batch < naive


def test_multiway_scaling(benchmark):
    sets = [uniform_points(2_000, seed=70 + i) for i in range(4)]
    trees = [bulk_load(points) for points in sets]

    def run():
        table = Table(
            title="Multi-way CPQ: m data sets x aggregation graph",
            columns=("m", "graph", "k", "disk_accesses", "max_queue"),
        )
        for m in (2, 3, 4):
            for graph in ("chain", "clique"):
                result = multiway_closest_tuples(
                    trees[:m], k=5, graph=graph
                )
                table.add(m, graph, 5, result.stats.disk_accesses,
                          result.stats.max_queue_size)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(table.render())
    assert all(v > 0 for v in table.column("disk_accesses"))
