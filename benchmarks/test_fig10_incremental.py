"""Regenerates Figure 10: STD/HEAP vs the incremental EVN/SML.

Paper claim: EVN is competitive for small K but inefficient for
K >= 10,000; with zero buffer HEAP and SML lead (identical behaviour
for disjoint workspaces); with a 128-page buffer STD is the most
efficient, outperforming SML by up to ~50 %.  The max_queue column
shows the incremental queue dwarfing HEAP's (Section 3.9).
"""


def test_fig10_vs_incremental(run_and_record):
    table = run_and_record("fig10")
    ks = sorted(set(table.column("k")))
    heap_q = table.value("max_queue", buffer_pages=0, overlap_pct=100,
                         k=ks[-1], algorithm="HEAP")
    sml_q = table.value("max_queue", buffer_pages=0, overlap_pct=100,
                        k=ks[-1], algorithm="SML")
    assert sml_q > heap_q
