#!/usr/bin/env python
"""Worker-scaling benchmark for the partitioned parallel K-CPQ executor.

Runs one reference K-CPQ (HEAP over two clustered SEQUOIA-like sets)
serially and with 2/4/8 intra-query workers, on trees whose page reads
carry a simulated disk latency (``PagedFile(read_latency=...)``; the
sleep happens outside the buffer lock and releases the GIL, so worker
threads genuinely overlap I/O waits -- the regime the executor is
built for).  Every parallel run is asserted byte-identical to the
serial result, pair for pair, before its time counts.

The printed table is Markdown (paste into ``docs/BENCHMARKS.md``).
Exit status is the CI gate: nonzero when the 4-worker wall clock
exceeds ``--max-ratio`` x the serial wall clock (default 0.9, i.e.
"4 workers must beat serial by at least 10%"; the full-size run is
expected to clear 2x).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py           # full
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick   # CI
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.api import CPQRequest, k_closest_pairs
from repro.datasets import sequoia_like
from repro.rtree.bulk import bulk_load
from repro.storage.paged_file import PagedFile
from repro.storage.store import MemoryPageStore

WORKER_COUNTS = (1, 2, 4, 8)


def build_trees(n: int, read_latency: float):
    """Two SEQUOIA-like point sets on latency-simulated paged files."""
    trees = []
    for seed in (2000, 2001):
        points = sequoia_like(n, seed=seed)
        file = PagedFile(
            MemoryPageStore(page_size=1024),
            buffer_capacity=0,
            page_size=1024,
            read_latency=0.0,  # free writes during construction
        )
        tree = bulk_load([tuple(p) for p in points], file=file)
        file.read_latency = read_latency
        trees.append(tree)
    return trees


def run_once(tree_p, tree_q, k: int, workers: int, depth: int):
    """One cold-cache execution; returns (wall_seconds, result)."""
    tree_p.file.reset_for_query()
    tree_q.file.reset_for_query()
    request = CPQRequest(
        k=k, algorithm="heap", workers=workers, partition_depth=depth,
    )
    start = time.perf_counter()
    result = k_closest_pairs(tree_p, tree_q, request=request)
    return time.perf_counter() - start, result


def run(n: int, k: int, read_latency: float, depth: int,
        repeats: int) -> dict:
    tree_p, tree_q = build_trees(n, read_latency)
    rows = {}
    baseline_pairs = None
    for workers in WORKER_COUNTS:
        best, result = min(
            (run_once(tree_p, tree_q, k, workers, depth)
             for __ in range(repeats)),
            key=lambda pair: pair[0],
        )
        if baseline_pairs is None:
            baseline_pairs = result.pairs
        elif result.pairs != baseline_pairs:
            raise AssertionError(
                f"{workers}-worker result differs from serial -- the "
                f"determinism invariant is broken"
            )
        parallel = result.stats.extra.get("parallel", {})
        rows[workers] = {
            "wall_s": best,
            "disk_accesses": result.stats.disk_accesses,
            "tasks": parallel.get("tasks"),
            "tasks_completed": parallel.get("tasks_completed"),
        }
    serial = rows[1]["wall_s"]
    for row in rows.values():
        row["speedup"] = serial / row["wall_s"]
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="worker scaling of the partitioned K-CPQ executor "
                    "on an I/O-latency-simulated SEQUOIA workload",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller dataset and fewer repeats (CI)")
    parser.add_argument("--n", type=int, default=None,
                        help="points per tree (default 40000, quick 8000)")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--read-latency-us", type=float, default=400.0,
                        help="simulated page-read latency, microseconds "
                             "(between SSD and spinning-disk seek cost)")
    parser.add_argument("--partition-depth", type=int, default=2,
                        choices=(1, 2))
    parser.add_argument("--max-ratio", type=float, default=0.9,
                        help="fail (exit 1) if 4-worker wall exceeds "
                             "this fraction of serial (default 0.9)")
    parser.add_argument("--json", default=None,
                        help="also write the numbers as JSON here")
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (8_000 if args.quick else 40_000)
    repeats = 2 if args.quick else 3
    latency = args.read_latency_us / 1e6

    rows = run(n, args.k, latency, args.partition_depth, repeats)

    print(f"parallel K-CPQ scaling: HEAP, sequoia-like n={n} per tree, "
          f"k={args.k}, depth={args.partition_depth}, "
          f"read latency {args.read_latency_us:g}us, best of {repeats}")
    print()
    print("| workers | wall (ms) | speedup | disk accesses | tasks run |")
    print("|--------:|----------:|--------:|--------------:|----------:|")
    for workers, row in rows.items():
        tasks = (f"{row['tasks_completed']}/{row['tasks']}"
                 if row["tasks"] is not None else "-")
        print(f"| {workers} | {row['wall_s'] * 1e3:.1f} "
              f"| {row['speedup']:.2f}x | {row['disk_accesses']} "
              f"| {tasks} |")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(rows, handle, indent=2)
        print(f"wrote {args.json}")

    ratio = rows[4]["wall_s"] / rows[1]["wall_s"]
    if ratio > args.max_ratio:
        print(f"FAIL: 4-worker wall is {ratio:.2f}x serial "
              f"(> {args.max_ratio:g})", file=sys.stderr)
        return 1
    print(f"OK: 4 workers at {ratio:.2f}x serial wall "
          f"(gate {args.max_ratio:g}, speedup {rows[4]['speedup']:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
