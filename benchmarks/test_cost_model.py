"""Validation of the analytical cost model (future work (b)).

Compares the model's predicted disk accesses against measured HEAP
costs across the overlap sweep.  The model is judged the way R-tree
cost models are: order-of-magnitude accuracy and correct trends.
"""

import pytest

from repro.analysis import (
    TreeShape,
    estimate_closest_pair_distance,
    estimate_cpq_accesses,
)
from repro.core import CPQRequest, k_closest_pairs
from repro.datasets import (
    UNIT_WORKSPACE,
    overlapping_workspace,
    uniform_points,
)
from repro.experiments.report import Table
from repro.rtree.bulk import bulk_load

N = 10_000
OVERLAPS = (0.0, 0.03, 0.12, 0.25, 0.5, 1.0)


def test_cost_model_vs_measurement(benchmark):
    def run():
        table = Table(
            title=(
                f"Cost model validation: predicted vs measured disk "
                f"accesses, uniform {N}/{N}, 1-CPQ"
            ),
            columns=("overlap_pct", "t_estimate", "predicted",
                     "measured", "ratio"),
            notes=(
                "Shape target: monotone growth with overlap and "
                "order-of-magnitude agreement, the accuracy class of "
                "published R-tree cost models."
            ),
        )
        tree_p = bulk_load(uniform_points(N, seed=51))
        shape_p = TreeShape.from_tree(tree_p, UNIT_WORKSPACE)
        for overlap in OVERLAPS:
            ws_q = overlapping_workspace(UNIT_WORKSPACE, overlap)
            tree_q = bulk_load(uniform_points(N, ws_q, seed=52))
            shape_q = TreeShape.from_tree(tree_q, ws_q)
            t = estimate_closest_pair_distance(shape_p, shape_q)
            predicted = estimate_cpq_accesses(shape_p, shape_q, t)
            measured = k_closest_pairs(
                tree_p,
                tree_q,
                request=CPQRequest(k=1, algorithm="heap"),
            ).stats.disk_accesses
            table.add(
                round(overlap * 100),
                round(t, 6),
                round(predicted, 1),
                measured,
                round(predicted / max(measured, 1), 2),
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(table.render())

    predictions = table.column("predicted")
    measurements = table.column("measured")
    # Trend: both rise with overlap.
    assert predictions == sorted(predictions)
    assert measurements == sorted(measurements)
    # Accuracy: within an order of magnitude at full overlap.
    ratio = table.rows[-1][-1]
    assert 0.1 <= ratio <= 10.0
