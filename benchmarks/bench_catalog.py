#!/usr/bin/env python
"""Benchmark of the catalog's index kinds and the planner's choice.

For each dataset shape (uniform, clustered, skewed) the catalog
registers all three index kinds (STR-packed, grid-packed, dynamic
R*-tree) and measures what the planner's ``plan_index`` dimension
trades off: build wall time, then K-CPQ query cost (disk accesses and
wall time at ``buffer_capacity=0``, where every node touch hits the
page file) through ``Catalog.open_dataset`` -- the exact reopen path
the service and shards use.

The printed table is Markdown (paste into ``docs/BENCHMARKS.md``);
``--json`` writes the numbers (default
``benchmarks/results/BENCH_catalog.json``).

Exit status is the CI gate: nonzero when the kind ``plan_index``
recommends for a dataset is more than ``--tolerance`` (relative)
worse in measured query disk accesses than the best **packed** kind
(STR or grid) for that dataset.  The planner does not have to win
every shape -- it must never recommend a packing that loses badly.
``dynamic`` is measured and reported for context but excluded from
the gate: the planner only recommends it for *mutable* datasets, a
workload property this static benchmark does not model (its ~100x
build cost would never amortise here).

Usage::

    PYTHONPATH=src python benchmarks/bench_catalog.py           # full
    PYTHONPATH=src python benchmarks/bench_catalog.py --quick   # CI
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import tempfile
import time

from repro.catalog import Catalog
from repro.core.api import CPQRequest, k_closest_pairs
from repro.service.planner import Planner

KINDS = ("str", "grid", "dynamic")


def _uniform(n: int, seed: int):
    rng = random.Random(seed)
    return [(rng.random(), rng.random()) for __ in range(n)]


def _clustered(n: int, seed: int, centers: int = 5):
    rng = random.Random(seed)
    hubs = [(rng.random(), rng.random()) for __ in range(centers)]
    out = []
    for __ in range(n):
        cx, cy = hubs[rng.randrange(centers)]
        out.append((
            min(1.0, max(0.0, cx + rng.gauss(0.0, 0.02))),
            min(1.0, max(0.0, cy + rng.gauss(0.0, 0.02))),
        ))
    return out


def _skewed(n: int, seed: int):
    # Heavy corner concentration: x, y ~ U^4 piles most of the mass
    # near the origin -- the shape the grid's occupancy CV flags.
    rng = random.Random(seed)
    return [(rng.random() ** 4, rng.random() ** 4) for __ in range(n)]


DATASETS = (
    ("uniform", _uniform),
    ("clustered", _clustered),
    ("skewed", _skewed),
)


def bench_dataset(catalog: Catalog, name: str, points, probe_points,
                  k: int, repeats: int) -> dict:
    """Register all kinds for one dataset; measure build and query.

    The query probe is the catalog's realistic workload: a
    bichromatic K-CPQ between the dataset and a second set of the
    same shape (``parks`` against ``schools``), both indexed by the
    kind under measurement.
    """
    entry = catalog.register_dataset(
        name, points, kind="auto", extra_kinds=KINDS, overwrite=True,
    )
    probe_entry = catalog.register_dataset(
        f"{name}_q", probe_points, kind="auto", extra_kinds=KINDS,
        overwrite=True,
    )
    chosen = entry.default_kind
    decision = entry.indexes[chosen].build["decision"]
    rows = []
    for kind in KINDS:
        index = entry.indexes[kind]
        tree_p = catalog.open_dataset(name, kind)
        tree_q = catalog.open_dataset(f"{name}_q", kind)
        try:
            best_s = float("inf")
            accesses = None
            for __ in range(repeats):
                start = time.perf_counter()
                result = k_closest_pairs(
                    tree_p, tree_q,
                    request=CPQRequest(k=k, algorithm="heap"),
                )
                best_s = min(best_s, time.perf_counter() - start)
                accesses = result.stats.disk_accesses
        finally:
            tree_p.file.store.close()
            tree_q.file.store.close()
        rows.append({
            "kind": kind,
            "build_s": index.build["build_s"],
            "nodes": index.build["nodes"],
            "height": index.build["height"],
            "query_s": best_s,
            "disk_accesses": accesses,
        })
    packed = [row for row in rows if row["kind"] != "dynamic"]
    winner = min(packed, key=lambda row: row["disk_accesses"])
    return {
        "dataset": name,
        "n": len(points),
        "k": k,
        "planner_kind": chosen,
        "planner_reason": decision["reason"],
        "measured_winner": winner["kind"],
        "kinds": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="catalog index-kind build/query benchmark and "
                    "planner-choice gate",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller datasets (CI)")
    parser.add_argument("--n", type=int, default=None,
                        help="points per dataset (overrides --quick)")
    parser.add_argument("--k", type=int, default=10,
                        help="result cardinality of the probe K-CPQ")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="fail (exit 1) when the planner's kind "
                             "needs more than (1 + tolerance) times "
                             "the best packed kind's disk accesses")
    parser.add_argument("--json", default=os.path.join(
                            os.path.dirname(os.path.abspath(__file__)),
                            "results", "BENCH_catalog.json"),
                        help="write the numbers as JSON here "
                             "('' disables)")
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (800 if args.quick else 4000)
    repeats = 2 if args.quick else 3

    workdir = tempfile.mkdtemp(prefix="bench-catalog-")
    results = []
    try:
        catalog = Catalog(workdir)
        for index, (name, maker) in enumerate(DATASETS):
            results.append(bench_dataset(
                catalog, name, maker(n, seed=41 + index),
                maker(n, seed=141 + index),
                k=args.k, repeats=repeats,
            ))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    print(f"catalog index kinds, n={n} per dataset, "
          f"K={args.k} heap probe (best of {repeats})\n")
    print("| dataset | kind | build | height | query | disk accesses |")
    print("|---|---|---|---|---|---|")
    for result in results:
        for row in result["kinds"]:
            marks = ""
            if row["kind"] == result["planner_kind"]:
                marks += " (planner)"
            if row["kind"] == result["measured_winner"]:
                marks += " (winner)"
            print(f"| {result['dataset']} | {row['kind']}{marks} "
                  f"| {row['build_s'] * 1e3:.1f} ms "
                  f"| {row['height']} "
                  f"| {row['query_s'] * 1e3:.1f} ms "
                  f"| {row['disk_accesses']} |")
    print()
    for result in results:
        print(f"# {result['dataset']}: planner chose "
              f"{result['planner_kind']} -- {result['planner_reason']}")

    failures = []
    for result in results:
        by_kind = {row["kind"]: row for row in result["kinds"]}
        chosen = by_kind[result["planner_kind"]]["disk_accesses"]
        best = by_kind[result["measured_winner"]]["disk_accesses"]
        if chosen > best * (1.0 + args.tolerance):
            failures.append(
                f"{result['dataset']}: planner kind "
                f"{result['planner_kind']} needs {chosen} accesses, "
                f"{result['measured_winner']} needs {best} "
                f"(tolerance {args.tolerance:.0%})"
            )
    gate = {
        "tolerance": args.tolerance,
        "failures": failures,
        "passed": not failures,
    }

    if args.json:
        os.makedirs(os.path.dirname(args.json), exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump({"n": n, "k": args.k, "datasets": results,
                       "gate": gate}, handle, indent=2)
            handle.write("\n")
        print(f"\n# wrote {args.json}")

    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("# gate: planner choice within tolerance of measured "
          "winner on every dataset")
    return 0


if __name__ == "__main__":
    sys.exit(main())
