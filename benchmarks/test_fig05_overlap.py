"""Regenerates Figure 5: the overlap-factor threshold for 1-CPQ.

Paper claim: with overlap <= ~5 % the three pruning algorithms are
2-20x faster than EXH; the advantage shrinks as overlap grows, and a
fully-overlapping query costs orders of magnitude more than a disjoint
one.
"""


def test_fig05_overlap_threshold(run_and_record):
    table = run_and_record("fig05")
    for combo in set(table.column("combo")):
        low = table.value("relative_to_exh_pct", combo=combo,
                          overlap_pct=0, algorithm="HEAP")
        assert low < 100.0
