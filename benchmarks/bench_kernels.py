#!/usr/bin/env python
"""Scalar vs. vectorised node-expansion kernel microbenchmark.

Times the four pairwise kernels the CPQ engine runs per node pair --
MINMINDIST, MINMAXDIST, MAXMAXDIST over entry-MBR arrays and the
leaf x leaf point-distance matrix -- in both implementations the engine
can use (``CPQOptions.use_vectorized``): the NumPy batch kernels of
:mod:`repro.geometry.vectorized` and the scalar per-pair loop over
:mod:`repro.geometry.metrics`, mirroring ``repro.core.engine``'s
``_scalar_matrix`` / ``_scalar_point_distances`` helpers.

The workload is the paper's node shape: M = 21 entries per node
(1 KiB pages, d = 2), i.e. 441 entry pairs per kernel call.  Besides
timing, every run asserts the two implementations agree *bitwise* --
the parity the engine's ``use_vectorized`` flag promises.

Exit status is the CI gate: nonzero when any kernel's speedup falls
below ``--min-speedup`` (default 1.0, i.e. "vectorised must not be
slower").  Results feed the ``KERNEL_NS_PER_PAIR`` calibration table
in :mod:`repro.analysis.cost_model`; re-run with ``--json`` after
kernel changes and update the constants from the printed ns/pair.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick    # CI
    PYTHONPATH=src python benchmarks/bench_kernels.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, Tuple

import numpy as np

from repro.geometry import metrics as scalar_metrics
from repro.geometry.mbr import MBR
from repro.geometry.minkowski import EUCLIDEAN
from repro.geometry.vectorized import (
    pairwise_maxdist,
    pairwise_mindist,
    pairwise_minmaxdist,
    pairwise_point_distances,
)

#: The paper's node capacity (1 KiB pages, d = 2): each kernel call
#: covers an M x M pair matrix.
M = 21


def _make_nodes(seed: int) -> Tuple[np.ndarray, ...]:
    """Two synthetic M-entry nodes: MBR arrays plus leaf points."""
    rng = np.random.default_rng(seed)
    lo_p = rng.random((M, 2))
    hi_p = lo_p + rng.random((M, 2)) * 0.05
    lo_q = rng.random((M, 2))
    hi_q = lo_q + rng.random((M, 2)) * 0.05
    pts_p = rng.random((M, 2))
    pts_q = rng.random((M, 2))
    return lo_p, hi_p, lo_q, hi_q, pts_p, pts_q


def _scalar_rect_matrix(fn, mbrs_p, mbrs_q) -> np.ndarray:
    """The engine's scalar expansion path (``_scalar_matrix``)."""
    return np.array(
        [[fn(a, b, EUCLIDEAN) for b in mbrs_q] for a in mbrs_p],
        dtype=np.float64,
    )


def _scalar_point_matrix(pts_p, pts_q) -> np.ndarray:
    """The engine's scalar leaf path (``_scalar_point_distances``)."""
    return np.array(
        [[EUCLIDEAN.distance(a, b) for b in pts_q] for a in pts_p],
        dtype=np.float64,
    )


def _best_seconds(fn: Callable[[], object], repeats: int,
                  iterations: int) -> float:
    """Best-of-``repeats`` mean seconds per call."""
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        for __ in range(iterations):
            fn()
        best = min(best, (time.perf_counter() - start) / iterations)
    return best


def run(repeats: int, iterations: int, seed: int) -> Dict[str, dict]:
    """Time every kernel both ways; returns per-kernel numbers."""
    lo_p, hi_p, lo_q, hi_q, pts_p, pts_q = _make_nodes(seed)
    mbrs_p = [MBR(tuple(lo), tuple(hi)) for lo, hi in zip(lo_p, hi_p)]
    mbrs_q = [MBR(tuple(lo), tuple(hi)) for lo, hi in zip(lo_q, hi_q)]

    kernels: Dict[str, Tuple[Callable, Callable]] = {
        "minmin": (
            lambda: _scalar_rect_matrix(scalar_metrics.mindist,
                                        mbrs_p, mbrs_q),
            lambda: pairwise_mindist(lo_p, hi_p, lo_q, hi_q, EUCLIDEAN),
        ),
        "minmax": (
            lambda: _scalar_rect_matrix(scalar_metrics.minmaxdist,
                                        mbrs_p, mbrs_q),
            lambda: pairwise_minmaxdist(lo_p, hi_p, lo_q, hi_q, EUCLIDEAN),
        ),
        "maxmax": (
            lambda: _scalar_rect_matrix(scalar_metrics.maxdist,
                                        mbrs_p, mbrs_q),
            lambda: pairwise_maxdist(lo_p, hi_p, lo_q, hi_q, EUCLIDEAN),
        ),
        "points": (
            lambda: _scalar_point_matrix(pts_p, pts_q),
            lambda: pairwise_point_distances(pts_p, pts_q, EUCLIDEAN),
        ),
    }

    pairs = M * M
    results: Dict[str, dict] = {}
    for name, (scalar_fn, vector_fn) in kernels.items():
        scalar_out = scalar_fn()
        vector_out = vector_fn()
        if not np.array_equal(scalar_out, vector_out):
            raise AssertionError(
                f"kernel {name!r}: scalar and vectorised outputs differ "
                f"(max abs diff "
                f"{np.max(np.abs(scalar_out - vector_out)):.3e})"
            )
        scalar_s = _best_seconds(scalar_fn, repeats, iterations)
        vector_s = _best_seconds(vector_fn, repeats, iterations)
        results[name] = {
            "pairs_per_call": pairs,
            "scalar_ns_per_pair": scalar_s / pairs * 1e9,
            "vectorized_ns_per_pair": vector_s / pairs * 1e9,
            "speedup": scalar_s / vector_s,
        }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="scalar vs vectorised expansion-kernel benchmark "
                    "(M=21 node pairs, d=2)",
    )
    parser.add_argument("--quick", action="store_true",
                        help="fewer repetitions (CI smoke mode)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail (exit 1) if any kernel's vectorised "
                             "speedup is below this (default: 1.0)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=None,
                        help="also write the numbers as JSON here")
    args = parser.parse_args(argv)

    repeats, iterations = (3, 50) if args.quick else (7, 400)
    results = run(repeats, iterations, args.seed)

    print(f"expansion kernels, M={M} ({M * M} pairs/call), d=2, "
          f"euclidean; best of {repeats} x {iterations} calls")
    print(f"{'kernel':<8} {'scalar ns/pair':>15} {'vector ns/pair':>15} "
          f"{'speedup':>9}")
    for name, row in results.items():
        print(f"{name:<8} {row['scalar_ns_per_pair']:>15.1f} "
              f"{row['vectorized_ns_per_pair']:>15.1f} "
              f"{row['speedup']:>8.1f}x")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2)
        print(f"wrote {args.json}")

    worst = min(results.values(), key=lambda row: row["speedup"])
    if worst["speedup"] < args.min_speedup:
        print(f"FAIL: slowest kernel speedup {worst['speedup']:.2f}x "
              f"< required {args.min_speedup:g}x", file=sys.stderr)
        return 1
    print(f"OK: all kernels >= {args.min_speedup:g}x "
          f"(slowest {worst['speedup']:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
