#!/usr/bin/env python
"""Overhead benchmark for the resilience stack.

Measures what the robustness machinery costs on the fault-free hot
path -- the number every resilience feature must justify itself
against:

* **checksum**: serialize + verify-deserialize throughput of the
  version-1 checksummed page format, against decoding the same pages
  with verification skipped (legacy version-0 images).
* **retry plumbing**: buffered page reads through the retry-wrapped
  miss path, against a policy of one attempt (no retry loop state).

Also reports the *recovery* cost: wall time of a reference K-CPQ under
the seeded ``transient`` chaos schedule relative to the fault-free
run, with the injected fault/retry counts.

The printed table is Markdown (paste into ``docs/BENCHMARKS.md``).
Exit status is the CI gate: nonzero when the fault-free checksummed
read path is more than ``--max-overhead`` slower than the unverified
one (default 0.5, i.e. "checksums may cost at most 50%"; the real
ratio is far lower because CRC32 is C-speed).

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py           # full
    PYTHONPATH=src python benchmarks/bench_resilience.py --quick   # CI
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.core.api import CPQRequest, k_closest_pairs
from repro.rtree.bulk import bulk_load
from repro.storage.buffer import RetryPolicy
from repro.storage.faults import FaultPlan, unwrap_tree_store, wrap_tree_store
from repro.storage.page import PageLayout
from repro.storage.paged_file import PagedFile
from repro.storage.serializer import NodeSerializer
from repro.storage.store import MemoryPageStore


def bench_checksum(pages: int, repeats: int) -> dict:
    """Decode throughput: verified (v1) vs unverified (legacy v0)."""
    layout = PageLayout(page_size=1024)
    serializer = NodeSerializer(layout)
    rng = random.Random(7)
    entries = [
        ((rng.random(), rng.random()), i) for i in range(layout.max_entries)
    ]
    checked = serializer.serialize_leaf(entries)
    # The same bytes as a legacy page: zeroed version/magic/CRC words
    # make deserialize skip verification (legacy reads are opt-in, so
    # the unverified baseline uses a legacy-tolerant serializer).
    legacy = checked[:8] + b"\x00" * 8 + checked[16:]
    legacy_serializer = NodeSerializer(layout, allow_legacy=True)

    def decode_loop(decoder: NodeSerializer, page: bytes) -> float:
        best = float("inf")
        for __ in range(repeats):
            start = time.perf_counter()
            for __ in range(pages):
                decoder.deserialize_arrays(page)
            best = min(best, time.perf_counter() - start)
        return best

    verified = decode_loop(serializer, checked)
    unverified = decode_loop(legacy_serializer, legacy)
    return {
        "verified_s": verified,
        "unverified_s": unverified,
        "overhead": verified / unverified - 1.0,
        "pages": pages,
    }


def bench_retry_plumbing(reads: int, repeats: int) -> dict:
    """Buffered miss-path reads: default retry loop vs single attempt."""
    def run(policy: RetryPolicy) -> float:
        store = MemoryPageStore(1024)
        for __ in range(64):
            store.write(store.allocate(), b"\x5A" * 1024)
        file = PagedFile(store, buffer_capacity=0, retry_policy=policy)
        best = float("inf")
        for __ in range(repeats):
            start = time.perf_counter()
            for i in range(reads):
                file.read_page(i % 64)
            best = min(best, time.perf_counter() - start)
        return best

    with_retry = run(RetryPolicy())
    single = run(RetryPolicy(max_attempts=1))
    return {
        "retry_s": with_retry,
        "single_s": single,
        "overhead": with_retry / single - 1.0,
        "reads": reads,
    }


def bench_recovery(n: int, k: int) -> dict:
    """Reference K-CPQ fault-free vs under the transient schedule."""
    rng = random.Random(11)
    tree_p = bulk_load([(rng.random(), rng.random()) for __ in range(n)])
    tree_q = bulk_load([(rng.random(), rng.random()) for __ in range(n)])
    request = CPQRequest(k=k, algorithm="heap")

    start = time.perf_counter()
    baseline = k_closest_pairs(tree_p, tree_q, request=request)
    clean_s = time.perf_counter() - start

    plan = FaultPlan(seed=13, p_transient=0.05)
    wrappers = [
        wrap_tree_store(tree_p, plan, sleep=lambda _s: None),
        wrap_tree_store(tree_q, plan, sleep=lambda _s: None),
    ]
    try:
        start = time.perf_counter()
        faulted = k_closest_pairs(tree_p, tree_q, request=request)
        faulted_s = time.perf_counter() - start
        retries = tree_p.stats.read_retries + tree_q.stats.read_retries
    finally:
        unwrap_tree_store(tree_p)
        unwrap_tree_store(tree_q)
    if faulted.pairs != baseline.pairs:
        raise AssertionError(
            "faulted K-CPQ diverged from the fault-free baseline -- "
            "the resilience invariant is broken"
        )
    injected = sum(w.faults.transient_raised for w in wrappers)
    return {
        "clean_s": clean_s,
        "faulted_s": faulted_s,
        "slowdown": faulted_s / clean_s if clean_s else float("nan"),
        "injected": injected,
        "retries": retries,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fault-free overhead and recovery cost of the "
                    "resilience stack (checksums, retrying buffer)",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller loops (CI)")
    parser.add_argument("--max-overhead", type=float, default=0.5,
                        help="fail (exit 1) if checksummed decode is "
                             "more than this fraction slower than "
                             "unverified decode (default 0.5)")
    parser.add_argument("--json", default=None,
                        help="also write the numbers as JSON here")
    args = parser.parse_args(argv)

    pages = 2_000 if args.quick else 20_000
    reads = 5_000 if args.quick else 50_000
    n = 1_500 if args.quick else 8_000
    repeats = 2 if args.quick else 3

    checksum = bench_checksum(pages, repeats)
    plumbing = bench_retry_plumbing(reads, repeats)
    recovery = bench_recovery(n, k=10)

    print("resilience overhead (fault-free hot path, best of "
          f"{repeats})\n")
    print("| path | with | without | overhead |")
    print("|---|---|---|---|")
    print(f"| checksummed decode ({checksum['pages']} pages) "
          f"| {checksum['verified_s'] * 1e3:.1f} ms "
          f"| {checksum['unverified_s'] * 1e3:.1f} ms "
          f"| {checksum['overhead'] * 100:+.1f}% |")
    print(f"| retry-wrapped miss path ({plumbing['reads']} reads) "
          f"| {plumbing['retry_s'] * 1e3:.1f} ms "
          f"| {plumbing['single_s'] * 1e3:.1f} ms "
          f"| {plumbing['overhead'] * 100:+.1f}% |")
    print()
    print(f"recovery: HEAP k=10 over {n} x {n} points under "
          f"transient p=0.05 -- {recovery['faulted_s'] * 1e3:.1f} ms vs "
          f"{recovery['clean_s'] * 1e3:.1f} ms clean "
          f"({recovery['slowdown']:.2f}x), {recovery['injected']} faults "
          f"injected, {recovery['retries']} retries, answers identical")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump({"checksum": checksum, "retry": plumbing,
                       "recovery": recovery}, handle, indent=2)
        print(f"\nwrote {args.json}")

    if checksum["overhead"] > args.max_overhead:
        print(f"FAIL: checksum overhead {checksum['overhead']:.2f} "
              f"exceeds --max-overhead {args.max_overhead}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
