#!/usr/bin/env python
"""Overhead benchmark for the resilience stack.

Measures what the robustness machinery costs on the fault-free hot
path -- the number every resilience feature must justify itself
against:

* **checksum**: serialize + verify-deserialize throughput of the
  version-1 checksummed page format, against decoding the same pages
  with verification skipped (legacy version-0 images).
* **retry plumbing**: buffered page reads through the retry-wrapped
  miss path, against a policy of one attempt (no retry loop state).

Also reports the *recovery* cost: wall time of a reference K-CPQ under
the seeded ``transient`` chaos schedule relative to the fault-free
run, with the injected fault/retry counts.

* **hedging**: tail latency of the 2-shard scatter-gather when one
  shard's wire is persistently slow -- p99 with hedged duplicate
  dispatch against p99 with hedging disabled.  This is the number the
  hedging machinery must justify itself with: a straggling shard
  should cost roughly the hedge threshold, not the full stall.

The printed table is Markdown (paste into ``docs/BENCHMARKS.md``).
Exit status is the CI gate: nonzero when the fault-free checksummed
read path is more than ``--max-overhead`` slower than the unverified
one (default 0.5, i.e. "checksums may cost at most 50%"; the real
ratio is far lower because CRC32 is C-speed), or when the hedged p99
fails to undercut the no-hedging p99 by at least
``--max-hedged-ratio``.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py           # full
    PYTHONPATH=src python benchmarks/bench_resilience.py --quick   # CI
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.core.api import CPQRequest, k_closest_pairs
from repro.rtree.bulk import bulk_load
from repro.storage.buffer import RetryPolicy
from repro.storage.faults import FaultPlan, unwrap_tree_store, wrap_tree_store
from repro.storage.page import PageLayout
from repro.storage.paged_file import PagedFile
from repro.storage.serializer import NodeSerializer
from repro.storage.store import MemoryPageStore


def bench_checksum(pages: int, repeats: int) -> dict:
    """Decode throughput: verified (v1) vs unverified (legacy v0)."""
    layout = PageLayout(page_size=1024)
    serializer = NodeSerializer(layout)
    rng = random.Random(7)
    entries = [
        ((rng.random(), rng.random()), i) for i in range(layout.max_entries)
    ]
    checked = serializer.serialize_leaf(entries)
    # The same bytes as a legacy page: zeroed version/magic/CRC words
    # make deserialize skip verification (legacy reads are opt-in, so
    # the unverified baseline uses a legacy-tolerant serializer).
    legacy = checked[:8] + b"\x00" * 8 + checked[16:]
    legacy_serializer = NodeSerializer(layout, allow_legacy=True)

    def decode_loop(decoder: NodeSerializer, page: bytes) -> float:
        best = float("inf")
        for __ in range(repeats):
            start = time.perf_counter()
            for __ in range(pages):
                decoder.deserialize_arrays(page)
            best = min(best, time.perf_counter() - start)
        return best

    verified = decode_loop(serializer, checked)
    unverified = decode_loop(legacy_serializer, legacy)
    return {
        "verified_s": verified,
        "unverified_s": unverified,
        "overhead": verified / unverified - 1.0,
        "pages": pages,
    }


def bench_retry_plumbing(reads: int, repeats: int) -> dict:
    """Buffered miss-path reads: default retry loop vs single attempt."""
    def run(policy: RetryPolicy) -> float:
        store = MemoryPageStore(1024)
        for __ in range(64):
            store.write(store.allocate(), b"\x5A" * 1024)
        file = PagedFile(store, buffer_capacity=0, retry_policy=policy)
        best = float("inf")
        for __ in range(repeats):
            start = time.perf_counter()
            for i in range(reads):
                file.read_page(i % 64)
            best = min(best, time.perf_counter() - start)
        return best

    with_retry = run(RetryPolicy())
    single = run(RetryPolicy(max_attempts=1))
    return {
        "retry_s": with_retry,
        "single_s": single,
        "overhead": with_retry / single - 1.0,
        "reads": reads,
    }


def bench_recovery(n: int, k: int) -> dict:
    """Reference K-CPQ fault-free vs under the transient schedule."""
    rng = random.Random(11)
    tree_p = bulk_load([(rng.random(), rng.random()) for __ in range(n)])
    tree_q = bulk_load([(rng.random(), rng.random()) for __ in range(n)])
    request = CPQRequest(k=k, algorithm="heap")

    start = time.perf_counter()
    baseline = k_closest_pairs(tree_p, tree_q, request=request)
    clean_s = time.perf_counter() - start

    plan = FaultPlan(seed=13, p_transient=0.05)
    wrappers = [
        wrap_tree_store(tree_p, plan, sleep=lambda _s: None),
        wrap_tree_store(tree_q, plan, sleep=lambda _s: None),
    ]
    try:
        start = time.perf_counter()
        faulted = k_closest_pairs(tree_p, tree_q, request=request)
        faulted_s = time.perf_counter() - start
        retries = tree_p.stats.read_retries + tree_q.stats.read_retries
    finally:
        unwrap_tree_store(tree_p)
        unwrap_tree_store(tree_q)
    if faulted.pairs != baseline.pairs:
        raise AssertionError(
            "faulted K-CPQ diverged from the fault-free baseline -- "
            "the resilience invariant is broken"
        )
    injected = sum(w.faults.transient_raised for w in wrappers)
    return {
        "clean_s": clean_s,
        "faulted_s": faulted_s,
        "slowdown": faulted_s / clean_s if clean_s else float("nan"),
        "injected": injected,
        "retries": retries,
    }


def bench_hedging(n: int, queries: int, stall_s: float = 0.1) -> dict:
    """Tail latency with one persistently slow shard, hedged vs not.

    Two spawn shards over file-backed trees; a transport stalls every
    job to shard 0 by ``stall_s``.  Without hedging each query eats
    the stall; with hedging the coordinator duplicates the straggling
    chunk to shard 1 once the attempt exceeds the latency-quantile
    threshold, so the tail collapses to roughly the hedge floor.
    """
    import tempfile
    import threading

    from repro.net.faults import ShardTransport
    from repro.net.retry import HedgePolicy
    from repro.net.shard import ShardManager, tree_spec
    from repro.storage.store import FilePageStore

    class StallShardZero(ShardTransport):
        def send(self, shard, message) -> None:
            if shard.shard_id == 0:
                inbox = shard.inbox
                timer = threading.Timer(
                    stall_s, lambda: inbox.put(message)
                )
                timer.daemon = True
                timer.start()
            else:
                shard.inbox.put(message)

    def p99(samples: list) -> float:
        ordered = sorted(samples)
        rank = max(1, int(round(0.99 * len(ordered))))
        return ordered[rank - 1]

    rng = random.Random(17)
    with tempfile.TemporaryDirectory(prefix="bench-hedging-") as tmp:
        trees = []
        for name in ("p.pages", "q.pages"):
            store = FilePageStore(f"{tmp}/{name}", page_size=1024)
            trees.append(bulk_load(
                [(rng.random(), rng.random()) for __ in range(n)],
                file=PagedFile(store, page_size=1024),
            ))
        spec_p, spec_q = tree_spec(trees[0]), tree_spec(trees[1])
        request = CPQRequest(k=10, algorithm="heap")
        out = {"queries": queries, "stall_s": stall_s}
        for label, policy in (
            ("unhedged", HedgePolicy(enabled=False)),
            # Median threshold: the persistent straggler's completions
            # would push a p95 threshold above the stall itself and
            # silence hedging -- exactly the regime this bench probes.
            ("hedged", HedgePolicy(quantile=0.5, floor_s=0.02,
                                   min_samples=4)),
        ):
            with ShardManager(
                spec_p, spec_q, shards=2,
                transport=StallShardZero(),
                shard_timeout_s=30.0, attempt_timeout_s=10.0,
                hedge_policy=policy, supervise=False,
            ) as manager:
                for __ in range(3):  # cold shards: spawn + first reads
                    manager.execute(request)
                latencies = []
                for __ in range(queries):
                    start = time.perf_counter()
                    result = manager.execute(request)
                    latencies.append(time.perf_counter() - start)
                    assert not result.stats.extra["net"]["partial"]
                out[f"{label}_p99_s"] = p99(latencies)
                out[f"{label}_mean_s"] = sum(latencies) / len(latencies)
                if label == "hedged":
                    stats = manager.net_stats()
                    out["hedges"] = stats["hedges"]
                    out["hedge_wins"] = stats["hedge_wins"]
        for tree in trees:
            tree.file.store.close()
    out["ratio"] = (out["hedged_p99_s"] / out["unhedged_p99_s"]
                    if out["unhedged_p99_s"] else float("nan"))
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fault-free overhead and recovery cost of the "
                    "resilience stack (checksums, retrying buffer)",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller loops (CI)")
    parser.add_argument("--max-overhead", type=float, default=0.5,
                        help="fail (exit 1) if checksummed decode is "
                             "more than this fraction slower than "
                             "unverified decode (default 0.5)")
    parser.add_argument("--max-hedged-ratio", type=float, default=0.8,
                        help="fail (exit 1) if the hedged p99 is not "
                             "below this fraction of the no-hedging "
                             "p99 under a stalled shard (default 0.8)")
    parser.add_argument("--skip-hedging", action="store_true",
                        help="skip the multi-process hedging benchmark")
    parser.add_argument("--json", default=None,
                        help="also write the numbers as JSON here")
    args = parser.parse_args(argv)

    pages = 2_000 if args.quick else 20_000
    reads = 5_000 if args.quick else 50_000
    n = 1_500 if args.quick else 8_000
    repeats = 2 if args.quick else 3

    checksum = bench_checksum(pages, repeats)
    plumbing = bench_retry_plumbing(reads, repeats)
    recovery = bench_recovery(n, k=10)
    hedging = None
    if not args.skip_hedging:
        hedging = bench_hedging(
            n=400 if args.quick else 1_000,
            queries=12 if args.quick else 40,
            stall_s=0.08 if args.quick else 0.1,
        )

    print("resilience overhead (fault-free hot path, best of "
          f"{repeats})\n")
    print("| path | with | without | overhead |")
    print("|---|---|---|---|")
    print(f"| checksummed decode ({checksum['pages']} pages) "
          f"| {checksum['verified_s'] * 1e3:.1f} ms "
          f"| {checksum['unverified_s'] * 1e3:.1f} ms "
          f"| {checksum['overhead'] * 100:+.1f}% |")
    print(f"| retry-wrapped miss path ({plumbing['reads']} reads) "
          f"| {plumbing['retry_s'] * 1e3:.1f} ms "
          f"| {plumbing['single_s'] * 1e3:.1f} ms "
          f"| {plumbing['overhead'] * 100:+.1f}% |")
    print()
    print(f"recovery: HEAP k=10 over {n} x {n} points under "
          f"transient p=0.05 -- {recovery['faulted_s'] * 1e3:.1f} ms vs "
          f"{recovery['clean_s'] * 1e3:.1f} ms clean "
          f"({recovery['slowdown']:.2f}x), {recovery['injected']} faults "
          f"injected, {recovery['retries']} retries, answers identical")
    if hedging is not None:
        print(f"hedging: 2 shards, shard 0 stalled "
              f"{hedging['stall_s'] * 1e3:.0f} ms, "
              f"{hedging['queries']} queries -- p99 "
              f"{hedging['hedged_p99_s'] * 1e3:.1f} ms hedged vs "
              f"{hedging['unhedged_p99_s'] * 1e3:.1f} ms unhedged "
              f"({hedging['ratio']:.2f}x), {hedging['hedges']} hedges, "
              f"{hedging['hedge_wins']} wins")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump({"checksum": checksum, "retry": plumbing,
                       "recovery": recovery, "hedging": hedging},
                      handle, indent=2)
        print(f"\nwrote {args.json}")

    failed = False
    if checksum["overhead"] > args.max_overhead:
        print(f"FAIL: checksum overhead {checksum['overhead']:.2f} "
              f"exceeds --max-overhead {args.max_overhead}",
              file=sys.stderr)
        failed = True
    if hedging is not None and hedging["ratio"] > args.max_hedged_ratio:
        print(f"FAIL: hedged p99 is {hedging['ratio']:.2f}x the "
              f"no-hedging p99, above --max-hedged-ratio "
              f"{args.max_hedged_ratio} -- hedging is not pulling in "
              f"the tail", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
