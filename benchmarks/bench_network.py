#!/usr/bin/env python
"""Shard-scaling benchmark for the network tier.

Boots the full stack -- file-backed trees, :class:`ShardManager`,
:class:`QueryService`, asyncio :class:`NetServer` on a real socket --
at 1 shard and at 4 shards, verifies byte parity with the serial
engine for every shardable algorithm *through the socket*, then
drives each configuration with the closed-loop multi-client load
generator and reports sustained QPS and latency tails.

The shards run in the disk-bound regime (cold buffers plus simulated
per-miss read latency, exactly like ``bench_parallel.py``): each
query's partitions wait on "disk" concurrently in separate shard
processes, so shard scaling shows up as wall-clock throughput even on
a single CPU core -- the regime the paper's I/O-dominated cost model
describes.

The summary is written to ``benchmarks/results/BENCH_network_qps.json``
(QPS, p50/p99, shard count per run, plus the 4-vs-1 scaling factor) so
the perf trajectory is machine-readable across PRs.  Exit status is
the CI gate: nonzero when 4-shard QPS fails to reach ``--min-scaling``
x the 1-shard QPS (default 2.0; ``--quick`` gates at a conservative
1.3 for shared CI boxes).

Usage::

    PYTHONPATH=src python benchmarks/bench_network.py           # full
    PYTHONPATH=src python benchmarks/bench_network.py --quick   # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.core.api import CPQRequest as CoreCPQ, k_closest_pairs
from repro.datasets import sequoia_like
from repro.net import NetClient, NetServer, ShardManager, tree_spec
from repro.net.loadgen import run_loadgen
from repro.net.shard import TreeSpec
from repro.rtree.bulk import bulk_load
from repro.service import CPQRequest as ServiceCPQ, QueryService
from repro.storage.paged_file import PagedFile
from repro.storage.store import FilePageStore

SHARD_COUNTS = (1, 4)
ALGORITHMS = ("naive", "exh", "sim", "std", "heap")


def build_trees(scratch: str, n: int):
    """Two SEQUOIA-like point sets persisted for shard reopening."""
    trees = []
    for side, seed in (("p", 2000), ("q", 2001)):
        store = FilePageStore(
            os.path.join(scratch, f"{side}.pages"), page_size=1024
        )
        trees.append(bulk_load(
            [tuple(p) for p in sequoia_like(n, seed=seed)],
            file=PagedFile(store, page_size=1024),
        ))
    return trees


def boot(tree_p, tree_q, shards: int, read_latency: float,
         workers: int):
    """Full stack for one shard count; returns the started server."""
    specs = []
    for tree in (tree_p, tree_q):
        spec = tree_spec(tree)
        # Cold shard buffers + per-miss latency: the disk-bound regime
        # where shard parallelism is wall-clock overlap of I/O waits.
        specs.append(TreeSpec(spec.path, spec.page_size, spec.metadata,
                              buffer_capacity=0,
                              read_latency=read_latency))
    manager = ShardManager(specs[0], specs[1], shards=shards)
    service = QueryService(
        workers=workers, cpq_executor=manager.service_executor(),
    )
    service.register_pair("default", manager.tree_p, manager.tree_q)
    return NetServer(service, manager=manager).start_in_thread()


def check_parity(port: int, serial_by_algorithm, k: int) -> None:
    """Byte parity through the socket, every algorithm, or die."""
    with NetClient("127.0.0.1", port) as client:
        for algorithm, serial in serial_by_algorithm.items():
            response = client.query(ServiceCPQ(
                pair="default", k=k, algorithm=algorithm,
                use_cache=False,
            ))
            assert response.status == "ok", (algorithm, response.error)
            assert response.result.pairs == serial.pairs, (
                f"{algorithm}: network answer diverged from serial"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="network-tier shard-scaling benchmark"
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: shorter runs, lower gate")
    parser.add_argument("--n", type=int, default=None,
                        help="points per tree (default 2000, quick 600)")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--clients", type=int, default=6,
                        help="closed-loop client threads")
    parser.add_argument("--duration", type=float, default=None,
                        help="measured seconds per configuration "
                             "(default 6, quick 2)")
    parser.add_argument("--read-latency-ms", type=float, default=1.0,
                        help="simulated per-miss disk latency in shards")
    parser.add_argument("--min-scaling", type=float, default=None,
                        help="gate: 4-shard QPS / 1-shard QPS floor "
                             "(default 2.0, quick 1.3)")
    parser.add_argument("--out", default=None,
                        help="summary JSON path (default "
                             "benchmarks/results/BENCH_network_qps.json)")
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (600 if args.quick else 2_000)
    duration = (args.duration if args.duration is not None
                else (2.0 if args.quick else 6.0))
    min_scaling = (args.min_scaling if args.min_scaling is not None
                   else (1.3 if args.quick else 2.0))
    out_path = args.out or os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "results", "BENCH_network_qps.json",
    )
    latency_s = args.read_latency_ms / 1000.0

    runs = []
    with tempfile.TemporaryDirectory(prefix="bench-network-") as scratch:
        tree_p, tree_q = build_trees(scratch, n)
        serial_by_algorithm = {
            algorithm: k_closest_pairs(
                tree_p, tree_q,
                request=CoreCPQ(k=args.k, algorithm=algorithm),
            )
            for algorithm in ALGORITHMS
        }
        templates = [ServiceCPQ(pair="default", k=args.k,
                                algorithm="heap", use_cache=False)]
        for shards in SHARD_COUNTS:
            server = boot(tree_p, tree_q, shards, latency_s,
                          workers=args.clients)
            try:
                check_parity(server.port, serial_by_algorithm, args.k)
                summary = run_loadgen(
                    "127.0.0.1", server.port, templates,
                    clients=args.clients,
                    duration_s=duration,
                    warmup_s=min(1.0, duration / 4.0),
                )
            finally:
                server.close()
            summary["shards"] = shards
            runs.append(summary)
            print(f"# shards={shards}: {summary['qps']} qps, "
                  f"p50={summary['p50_ms']}ms "
                  f"p99={summary['p99_ms']}ms "
                  f"({summary['requests']} requests, "
                  f"{summary['errors']} errors)", file=sys.stderr)

    scaling = (runs[1]["qps"] / runs[0]["qps"]
               if runs[0]["qps"] else 0.0)
    report = {
        "benchmark": "network_qps",
        "config": {
            "n": n,
            "k": args.k,
            "clients": args.clients,
            "duration_s": duration,
            "read_latency_ms": args.read_latency_ms,
            "algorithm": "heap",
            "quick": args.quick,
        },
        "runs": runs,
        "scaling_4v1": round(scaling, 2),
    }
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print("\n| shards | qps | p50 ms | p99 ms | requests | errors |")
    print("|-------:|----:|-------:|-------:|---------:|-------:|")
    for run in runs:
        print(f"| {run['shards']} | {run['qps']} | {run['p50_ms']} "
              f"| {run['p99_ms']} | {run['requests']} "
              f"| {run['errors']} |")
    print(f"\n4-shard scaling vs 1 shard: {scaling:.2f}x "
          f"(gate: >= {min_scaling}x); wrote {out_path}")

    if any(run["errors"] for run in runs):
        print("FAIL: load generator observed errors", file=sys.stderr)
        return 1
    if scaling < min_scaling:
        print(f"FAIL: scaling {scaling:.2f}x below the "
              f"{min_scaling}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
