"""Regenerates Figure 2: tie-treatment criteria T1-T5 (STD and HEAP).

Paper claim: T1 always outperforms the other criteria; alternatives
deteriorate by up to ~50 % on overlapping data sets, and all criteria
are near-equivalent at 0 % overlap where ties are rare.
"""


def test_fig02_tie_treatments(run_and_record):
    table = run_and_record("fig02")
    # T1 is the 100% reference everywhere.
    for row in table.select(criterion="T1"):
        assert row[4] == 100.0
