"""Regenerates Figure 4: EXH/SIM/STD/HEAP for 1-CPQ, zero buffer.

Paper claim: at 0 % overlap the cost of HEAP and STD is about an order
of magnitude below SIM and EXH; at 100 % overlap HEAP and STD still
win with ~10-20 % average gaps.
"""


def test_fig04_zero_buffer(run_and_record):
    table = run_and_record("fig04")
    for combo in set(table.column("combo")):
        exh = table.value("disk_accesses", combo=combo, overlap_pct=0,
                          algorithm="EXH")
        heap = table.value("disk_accesses", combo=combo, overlap_pct=0,
                           algorithm="HEAP")
        assert heap <= exh  # the order-of-magnitude claim, weakly
