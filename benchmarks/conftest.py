"""Shared benchmark plumbing.

Each benchmark module regenerates one figure of the paper via
:func:`repro.experiments.run_figure`.  Experiments are macro-scale
(seconds to minutes), so pytest-benchmark runs them pedantically: one
round, one iteration.  Rendered tables are printed (visible with
``-s``) and written to ``benchmarks/results/`` for inspection.

Environment knobs (see repro.experiments.config):
  REPRO_SCALE  fraction of paper cardinalities (default 0.25)
  REPRO_BUILD  'str' (default) or 'dynamic' tree construction
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Chart renderings printed (and saved) next to each figure's table:
#: (x, series, value, filters) per chart.
FIGURE_CHARTS = {
    "fig04": [("combo", "algorithm", "disk_accesses",
               {"overlap_pct": 0}),
              ("combo", "algorithm", "disk_accesses",
               {"overlap_pct": 100})],
    "fig05": [("overlap_pct", "algorithm", "relative_to_exh_pct", {})],
    "fig06": [("buffer_pages", "algorithm", "disk_accesses",
               {"overlap_pct": 100})],
    "fig07": [("k", "algorithm", "disk_accesses", {"overlap_pct": 0}),
              ("k", "algorithm", "disk_accesses",
               {"overlap_pct": 100})],
    "fig09": [("buffer_pages", "algorithm", "disk_accesses", {})],
    "fig10": [("k", "algorithm", "disk_accesses",
               {"buffer_pages": 0, "overlap_pct": 100}),
              ("k", "algorithm", "disk_accesses",
               {"buffer_pages": 128, "overlap_pct": 100})],
}


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def run_and_record(benchmark, results_dir):
    """Run one figure under pytest-benchmark and persist its table."""

    def runner(figure_id: str):
        from repro.experiments import run_figure
        from repro.experiments.chart import series_chart

        table = benchmark.pedantic(
            run_figure, args=(figure_id,), rounds=1, iterations=1
        )
        charts = []
        for x, series, value, filters in FIGURE_CHARTS.get(figure_id, []):
            charts.append(
                series_chart(table, x=x, series=series, value=value,
                             **filters)
            )
        output = "\n\n".join([table.render()] + charts)
        path = os.path.join(results_dir, f"{figure_id}.txt")
        with open(path, "w") as handle:
            handle.write(output + "\n")
        csv_path = os.path.join(results_dir, f"{figure_id}.csv")
        table.to_csv(csv_path)
        print()
        print(output)
        return table

    return runner
