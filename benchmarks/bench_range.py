#!/usr/bin/env python
"""Repeated-range workload: RCP candidate reuse vs cold clipped runs.

The serving scenario behind the range query family is a map viewport:
the same (or a contained) window is asked again and again as users pan
and zoom.  This benchmark runs a window workload twice over SEQUOIA-
like trees whose page reads carry a simulated disk latency:

* **cold clipped** -- every window answered by the ``clipped``
  traversal with the candidate index disabled (each run pays the full
  branch-and-bound walk);
* **rcp warm** -- the same workload through the ``rcp`` algorithm: the
  first occurrence of each window computes and stores an extended
  candidate list, repeats are exact hits and contained sub-windows are
  containment hits, both answered without touching the trees.

Every rcp answer is asserted byte-identical to the clipped answer for
its window before any time counts.  The printed table is Markdown
(paste into ``docs/BENCHMARKS.md``).  Exit status is the CI gate:
nonzero when the cold-clipped wall clock is less than ``--min-speedup``
times the rcp wall clock (default 1.5x -- reuse must at least halve
the repeated-range cost, full-size runs clear far more).

Usage::

    PYTHONPATH=src python benchmarks/bench_range.py           # full
    PYTHONPATH=src python benchmarks/bench_range.py --quick   # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.api import CPQRequest, k_closest_pairs
from repro.core.constraints import RangeSpec
from repro.datasets import sequoia_like
from repro.rtree.bulk import bulk_load
from repro.storage.paged_file import PagedFile
from repro.storage.store import MemoryPageStore


def build_trees(n: int, read_latency: float):
    """Two SEQUOIA-like point sets on latency-simulated paged files."""
    trees = []
    for seed in (2000, 2001):
        points = sequoia_like(n, seed=seed)
        file = PagedFile(
            MemoryPageStore(page_size=1024),
            buffer_capacity=0,
            page_size=1024,
            read_latency=0.0,  # free writes during construction
        )
        tree = bulk_load([tuple(p) for p in points], file=file)
        file.read_latency = read_latency
        trees.append(tree)
    return trees


def viewport_workload(rounds: int):
    """Pan-and-zoom window sequence: repeats plus contained zooms.

    Each round visits three base viewports and a zoom-in of each, so
    from round two onward every window is an exact or containment hit
    for the candidate index.
    """
    bases = (
        RangeSpec((0.10, 0.10), (0.45, 0.45)),
        RangeSpec((0.30, 0.40), (0.70, 0.80)),
        RangeSpec((0.55, 0.20), (0.90, 0.60)),
    )
    zooms = (
        RangeSpec((0.20, 0.20), (0.38, 0.38)),
        RangeSpec((0.40, 0.50), (0.60, 0.70)),
        RangeSpec((0.62, 0.30), (0.80, 0.50)),
    )
    windows = []
    for __ in range(rounds):
        for base, zoom in zip(bases, zooms):
            windows.append(base)
            windows.append(zoom)
    return windows


def run_workload(tree_p, tree_q, windows, k: int, algorithm: str):
    """Answer every window; returns (wall_s, node_pairs, results)."""
    wall = 0.0
    node_pairs = 0
    results = []
    for window in windows:
        tree_p.file.reset_for_query()
        tree_q.file.reset_for_query()
        request = CPQRequest(k=k, algorithm=algorithm, range=window)
        start = time.perf_counter()
        result = k_closest_pairs(tree_p, tree_q, request=request)
        wall += time.perf_counter() - start
        node_pairs += result.stats.node_pairs_visited
        results.append(result)
    return wall, node_pairs, results


def reset_candidate_index(tree_p, tree_q):
    """Drop any candidate lists memoised for this tree pair."""
    from repro.query.rcp import index_for

    index_for(tree_p, tree_q).clear()


def run(n: int, k: int, read_latency: float, rounds: int) -> dict:
    tree_p, tree_q = build_trees(n, read_latency)
    windows = viewport_workload(rounds)

    cold_wall, cold_nodes, cold_results = run_workload(
        tree_p, tree_q, windows, k, "clipped"
    )
    reset_candidate_index(tree_p, tree_q)
    warm_wall, warm_nodes, warm_results = run_workload(
        tree_p, tree_q, windows, k, "rcp"
    )

    for index, (cold, warm) in enumerate(
            zip(cold_results, warm_results)):
        if cold.pairs != warm.pairs:
            raise AssertionError(
                f"window {index}: rcp answer differs from clipped -- "
                f"the reuse soundness invariant is broken"
            )
    rcp_stats = warm_results[-1].stats.extra["rcp"]
    return {
        "queries": len(windows),
        "clipped_cold": {"wall_s": cold_wall,
                         "node_pairs": cold_nodes},
        "rcp_warm": {
            "wall_s": warm_wall,
            "node_pairs": warm_nodes,
            "exact_hits": rcp_stats["hits"],
            "containment_hits": rcp_stats["containment_hits"],
            "misses": rcp_stats["misses"],
        },
        "speedup": cold_wall / warm_wall,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="repeated-range viewport workload: RCP candidate "
                    "reuse vs cold clipped traversals",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller dataset and fewer rounds (CI)")
    parser.add_argument("--n", type=int, default=None,
                        help="points per tree (default 30000, quick 6000)")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--rounds", type=int, default=None,
                        help="workload rounds (default 8, quick 4)")
    parser.add_argument("--read-latency-us", type=float, default=100.0,
                        help="simulated page-read latency, microseconds")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="fail (exit 1) when cold-clipped wall is "
                             "under this multiple of rcp wall")
    parser.add_argument("--json", default=None,
                        help="also write the numbers as JSON here")
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (6_000 if args.quick else 30_000)
    rounds = args.rounds if args.rounds is not None else (
        4 if args.quick else 8
    )
    latency = args.read_latency_us / 1e6

    stats = run(n, args.k, latency, rounds)

    print(f"range query family: sequoia-like n={n} per tree, "
          f"k={args.k}, {stats['queries']} windowed queries "
          f"({rounds} viewport rounds), read latency "
          f"{args.read_latency_us:g}us")
    print()
    print("| strategy | wall (ms) | node pairs | reuse |")
    print("|----------|----------:|-----------:|-------|")
    cold = stats["clipped_cold"]
    warm = stats["rcp_warm"]
    print(f"| clipped (cold each query) | {cold['wall_s'] * 1e3:.1f} "
          f"| {cold['node_pairs']} | - |")
    print(f"| rcp (candidate reuse) | {warm['wall_s'] * 1e3:.1f} "
          f"| {warm['node_pairs']} "
          f"| {warm['exact_hits']} exact + "
          f"{warm['containment_hits']} containment |")
    print()
    print(f"speedup: {stats['speedup']:.2f}x")

    if args.json:
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w") as handle:
            json.dump(stats, handle, indent=2)
        print(f"wrote {args.json}")

    if stats["speedup"] < args.min_speedup:
        print(f"FAIL: candidate reuse speedup {stats['speedup']:.2f}x "
              f"< {args.min_speedup:g}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
