"""Multi-way closest tuples: a three-leg trip planner.

Extends the paper's tourism scenario (Section 1) with its future-work
multi-way CPQ (Section 6): find the K best (airport, resort, site)
triples minimising the total travel chain
``d(airport, resort) + d(resort, site)``, plus the "compact weekend"
variant that also counts the closing leg (clique aggregation).

Run:  python examples/trip_planner.py [K]
"""

import sys

import numpy as np

from repro.datasets import sequoia_like, uniform_points
from repro.extensions import multiway_closest_tuples
from repro.rtree.bulk import bulk_load


def make_airports(n: int, seed: int = 12) -> np.ndarray:
    """A handful of airports scattered over the region."""
    rng = np.random.default_rng(seed)
    return rng.random((n, 2))


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 5

    airports = bulk_load(make_airports(40))
    resorts = bulk_load(uniform_points(2_000, seed=8))
    sites = bulk_load(sequoia_like(10_000, seed=21))
    print(
        f"{len(airports)} airports, {len(resorts)} resorts, "
        f"{len(sites)} archeological sites"
    )

    for graph, label in (
        ("chain", "chain: airport -> resort -> site"),
        ("clique", "clique: all three legs"),
    ):
        result = multiway_closest_tuples(
            [airports, resorts, sites], k=k, graph=graph
        )
        print(f"\nTop {k} triples ({label}), "
              f"{result.stats.disk_accesses} disk accesses:")
        for rank, triple in enumerate(result.tuples, start=1):
            airport, resort, site = triple.points
            print(
                f"  {rank}. total {triple.distance:.4f}  "
                f"airport ({airport[0]:.2f}, {airport[1]:.2f})  "
                f"resort ({resort[0]:.2f}, {resort[1]:.2f})  "
                f"site ({site[0]:.2f}, {site[1]:.2f})"
            )


if __name__ == "__main__":
    main()
