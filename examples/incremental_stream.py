"""Streaming closest pairs with the incremental distance join.

The Hjaltason & Samet algorithm yields pairs one at a time in
ascending distance order, so a consumer can stop as soon as a
condition is met -- here: "give me every pair closer than a budget
distance, I don't know how many there are".  The example also shows
the price of that flexibility: the priority queue grows far larger
than the HEAP algorithm's (paper Section 3.9).

Run:  python examples/incremental_stream.py
"""

from repro.core import CPQRequest, k_closest_pairs
from repro.datasets import uniform_points
from repro.incremental import incremental_distance_join
from repro.rtree.bulk import bulk_load
from repro.storage.stats import QueryStats

N = 8_000
DISTANCE_BUDGET = 0.002


def main() -> None:
    tree_p = bulk_load(uniform_points(N, seed=3))
    tree_q = bulk_load(uniform_points(N, seed=4))

    # --- consume lazily until the distance budget is exceeded
    stats = QueryStats()
    tree_p.file.reset_for_query()
    tree_q.file.reset_for_query()
    stream = incremental_distance_join(
        tree_p, tree_q, policy="sml", stats=stats
    )
    pairs = []
    for pair in stream:
        if pair.distance > DISTANCE_BUDGET:
            break
        pairs.append(pair)
    print(f"Pairs closer than {DISTANCE_BUDGET}: {len(pairs)}")
    print(f"  disk accesses: {stats.disk_accesses}")
    print(f"  max queue size: {stats.max_queue_size}")
    for pair in pairs[:5]:
        print(f"  {pair.p} <-> {pair.q}  d = {pair.distance:.6f}")
    if len(pairs) > 5:
        print(f"  ... and {len(pairs) - 5} more")

    # --- the non-incremental HEAP algorithm needs K up front, but its
    #     queue stays tiny (the paper's core argument)
    k = max(1, len(pairs))
    result = k_closest_pairs(
        tree_p,
        tree_q,
        request=CPQRequest(k=k, algorithm="heap"),
    )
    print(f"\nHEAP algorithm for the same K = {k}:")
    print(f"  disk accesses: {result.stats.disk_accesses}")
    print(f"  max queue size: {result.stats.max_queue_size}")


if __name__ == "__main__":
    main()
