"""Quickstart: index two point sets and find their K closest pairs.

Run:  python examples/quickstart.py
"""

from repro.core import CPQRequest, closest_pair, k_closest_pairs
from repro.datasets import uniform_points
from repro.geometry import MBR, maxmaxdist, minmaxdist, minmindist
from repro.rtree.bulk import bulk_load


def main() -> None:
    # --- the Section 2.3 metrics on two example MBRs (paper Figure 1)
    box_p = MBR((0.0, 0.0), (2.0, 3.0))
    box_q = MBR((5.0, 1.0), (9.0, 8.0))
    print("Two MBRs and their pairwise metrics (paper Figure 1):")
    print(f"  MP = {box_p}")
    print(f"  MQ = {box_q}")
    print(f"  MINMINDIST = {minmindist(box_p, box_q):.4f}  "
          "(lower bound for every point pair)")
    print(f"  MINMAXDIST = {minmaxdist(box_p, box_q):.4f}  "
          "(at least one pair lies within this)")
    print(f"  MAXMAXDIST = {maxmaxdist(box_p, box_q):.4f}  "
          "(upper bound for every point pair)")
    print()

    # --- index two data sets in R*-trees (disk pages + LRU buffer)
    points_p = uniform_points(5_000, seed=1)
    points_q = uniform_points(5_000, seed=2)
    tree_p = bulk_load(points_p)
    tree_q = bulk_load(points_q)
    print(f"Indexed P: {tree_p}")
    print(f"Indexed Q: {tree_q}")
    print()

    # --- 1-CPQ: the single closest pair
    best = closest_pair(tree_p, tree_q, algorithm="heap")
    print(f"Closest pair: {best.p} <-> {best.q} "
          f"at distance {best.distance:.6f}")
    print()

    # --- K-CPQ with each algorithm; identical answers, different cost
    print("K = 10 closest pairs, all five algorithms (B = 0):")
    print(f"  {'algorithm':10s} {'disk accesses':>14s} {'10th distance':>14s}")
    for algorithm in ("naive", "exh", "sim", "std", "heap"):
        result = k_closest_pairs(
            tree_p,
            tree_q,
            request=CPQRequest(k=10, algorithm=algorithm),
        )
        print(f"  {algorithm.upper():10s} "
              f"{result.stats.disk_accesses:14d} "
              f"{result.max_distance:14.6f}")


if __name__ == "__main__":
    main()
