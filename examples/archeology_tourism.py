"""The paper's motivating scenario (Section 1).

One data set holds the locations of archeological sites (clustered,
like real settlement data); the other holds holiday resorts (spread
along a coastal band).  A K-CPQ finds the K site/resort pairs with the
smallest distances "so that tourists accommodated in a resort can
easily visit the archeological site of each pair".

Run:  python examples/archeology_tourism.py [K]
"""

import sys

import numpy as np

from repro.core import CPQRequest, k_closest_pairs
from repro.datasets import sequoia_like
from repro.rtree.bulk import bulk_load


def make_resorts(n: int, seed: int = 7) -> np.ndarray:
    """Resorts hug the 'coast': a noisy band along the x = y diagonal."""
    rng = np.random.default_rng(seed)
    t = rng.random(n)
    x = t + rng.normal(0.0, 0.03, n)
    y = 1.0 - t + rng.normal(0.03, 0.02, n)
    return np.clip(np.column_stack([x, y]), 0.0, 1.0)


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 10

    sites = sequoia_like(8_000, seed=42)      # archeological sites
    resorts = make_resorts(1_500)             # holiday resorts

    tree_sites = bulk_load(sites)
    tree_resorts = bulk_load(resorts)
    print(f"{len(tree_sites)} archeological sites, "
          f"{len(tree_resorts)} holiday resorts")

    result = k_closest_pairs(
        tree_sites,
        tree_resorts,
        request=CPQRequest(k=k, algorithm="heap"),
    )
    print(f"\nTop {k} site/resort pairs (HEAP algorithm, "
          f"{result.stats.disk_accesses} disk accesses):\n")
    header = f"{'rank':>4s}  {'site':>18s}  {'resort':>18s}  {'distance':>9s}"
    print(header)
    print("-" * len(header))
    for rank, pair in enumerate(result.pairs, start=1):
        site = f"({pair.p[0]:.3f}, {pair.p[1]:.3f})"
        resort = f"({pair.q[0]:.3f}, {pair.q[1]:.3f})"
        print(f"{rank:4d}  {site:>18s}  {resort:>18s}  "
              f"{pair.distance:9.5f}")

    # The advertising-budget angle: how much more I/O do bigger
    # campaigns (larger K) cost?
    print("\nCost of larger campaigns:")
    for budget_k in (1, 10, 100, 1000):
        r = k_closest_pairs(
            tree_sites,
            tree_resorts,
            request=CPQRequest(k=budget_k, algorithm="heap"),
        )
        print(f"  K = {budget_k:5d}: {r.stats.disk_accesses:6d} disk "
              f"accesses, worst distance {r.max_distance:.5f}")


if __name__ == "__main__":
    main()
