"""Mini-study of the paper's headline finding: workspace overlap
dominates the cost of closest pair queries.

Sweeps the overlap portion between two uniform data sets from 0 % to
100 % and reports the disk accesses of each algorithm -- a pocket
version of the paper's Figure 5.

Run:  python examples/overlap_study.py
"""

from repro.core import CPQRequest, k_closest_pairs
from repro.datasets import UNIT_WORKSPACE, overlapping_workspace, uniform_points
from repro.rtree.bulk import bulk_load

ALGORITHMS = ("exh", "sim", "std", "heap")
OVERLAPS = (0.0, 0.05, 0.25, 0.5, 1.0)
N = 10_000


def main() -> None:
    tree_p = bulk_load(uniform_points(N, seed=1))
    print(f"P: {N} uniform points in the unit workspace")
    print(f"Q: {N} uniform points, workspace slid for each overlap\n")

    header = "overlap   " + "".join(f"{a.upper():>9s}" for a in ALGORITHMS)
    print(header)
    print("-" * len(header))
    for overlap in OVERLAPS:
        workspace = overlapping_workspace(UNIT_WORKSPACE, overlap)
        tree_q = bulk_load(uniform_points(N, workspace, seed=2))
        costs = []
        for algorithm in ALGORITHMS:
            result = k_closest_pairs(
                tree_p,
                tree_q,
                request=CPQRequest(k=1, algorithm=algorithm),
            )
            costs.append(result.stats.disk_accesses)
        row = f"{overlap:7.0%}   " + "".join(f"{c:9d}" for c in costs)
        print(row)

    print(
        "\nShape to expect (paper Sections 4.3.2, 4.4): disjoint "
        "workspaces cost orders of magnitude less than fully "
        "overlapping ones, and zero/low overlap gives STD and HEAP a "
        "serious advantage over EXH and SIM."
    )


if __name__ == "__main__":
    main()
