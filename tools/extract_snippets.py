#!/usr/bin/env python3
"""Compile-check the Python code blocks embedded in the documentation.

Extracts every fenced ``` ```python``` block from the README and
``docs/`` and runs it through :func:`compile` (syntax only -- snippets
are not executed, so they may reference variables they do not define,
but they cannot silently rot into non-Python).  Doctest-style blocks
(lines starting with ``>>>``) are unwrapped first.

Exits 1 listing every snippet that fails to compile, 0 when clean.

Usage::

    python tools/extract_snippets.py [FILE_OR_DIR ...]  # default: README.md docs/
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator, List, Tuple

_OPEN_FENCE = re.compile(r"^```(\w+)?\s*$")


def markdown_files(targets: List[str]) -> Iterator[str]:
    for target in targets:
        if os.path.isdir(target):
            for root, __, names in os.walk(target):
                for name in sorted(names):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        elif target.endswith(".md"):
            yield target


def python_snippets(path: str) -> Iterator[Tuple[int, str]]:
    """Yield (first_line_number, source) per ```python fence in a file."""
    lines = open(path, encoding="utf-8").read().splitlines()
    i = 0
    while i < len(lines):
        match = _OPEN_FENCE.match(lines[i].strip())
        if match and match.group(1) == "python":
            start = i + 1
            body = []
            i += 1
            while i < len(lines) and lines[i].strip() != "```":
                body.append(lines[i])
                i += 1
            yield start + 1, "\n".join(body)
        elif match:
            # Skip any other fenced block wholesale (including plain
            # fences that may contain ``` -looking content).
            i += 1
            while i < len(lines) and lines[i].strip() != "```":
                i += 1
        i += 1


def unwrap_doctest(source: str) -> str:
    """Turn a ``>>>``-style block into plain statements."""
    if ">>>" not in source:
        return source
    kept = []
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith(">>> "):
            kept.append(stripped[4:])
        elif stripped.startswith("... "):
            kept.append(stripped[4:])
        # anything else is expected output: drop it
    return "\n".join(kept)


def main(argv: List[str]) -> int:
    targets = argv or ["README.md", "docs"]
    checked = 0
    errors: List[str] = []
    for path in markdown_files(targets):
        for line_no, source in python_snippets(path):
            checked += 1
            try:
                compile(unwrap_doctest(source), f"{path}:{line_no}", "exec")
            except SyntaxError as exc:
                errors.append(f"{path}:{line_no}: {exc.msg} "
                              f"(snippet line {exc.lineno})")
    if errors:
        print(f"extract_snippets: {len(errors)} of {checked} python "
              f"snippet(s) failed to compile:")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"extract_snippets: {checked} python snippet(s) compile")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
