#!/usr/bin/env python3
"""Markdown link checker, docstring and capability-table gate.

Verifies every relative markdown link -- ``[text](path)``,
``[text](path#anchor)`` and bare reference-style definitions -- against
the working tree:

* the linked file must exist (relative to the linking document);
* a ``#anchor`` into a markdown file must match a heading of that file
  (GitHub's slugging rules: lowercase, spaces to dashes, punctuation
  dropped).

External links (``http(s)://``, ``mailto:``) are *not* fetched -- CI
must not depend on the network -- and absolute paths are rejected as
unportable.

``--docstrings PKG_DIR`` additionally walks the named source trees and
fails on any module or public class (name not starting with ``_``)
without a docstring -- the enforcement teeth behind the
``repro.storage`` docstring pass; see ``docs/STORAGE.md``.

When ``docs/API.md`` is among the checked files, its query-family
capability table (the one whose header names ``supports_range`` /
``supports_colors``) is additionally compared against the
``AlgorithmSpec`` literals of ``src/repro/core/api.py`` -- parsed from
the source text, so the check needs no installed package and no
third-party imports.  Every registered algorithm must have a row, no
row may name an unregistered algorithm, and every checkmark must match
the registry flag.

When ``docs/CATALOG.md`` is among the checked files, its CPQL keyword
table (header first column ``keyword``) is compared the same way
against the ``KEYWORDS`` tuple of ``src/repro/query/cpql.py``: every
keyword the tokenizer reserves must have a row, no row may document an
unreserved word, and the rows must stay in the tuple's (alphabetical)
order.

Exits 1 listing every broken link / missing docstring / stale
capability or keyword row, 0 when clean.

Usage::

    python tools/check_docs.py [FILE_OR_DIR ...]   # default: README.md docs/
    python tools/check_docs.py README.md docs --docstrings src/repro/storage
"""

from __future__ import annotations

import ast
import os
import re
import sys
from typing import Iterator, List, Tuple

#: Inline links, excluding images' leading ``!`` handled the same way.
_LINK = re.compile(r"\[(?:[^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's heading -> anchor slug transformation."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(targets: List[str]) -> Iterator[str]:
    for target in targets:
        if os.path.isdir(target):
            for root, __, names in os.walk(target):
                for name in sorted(names):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        elif target.endswith(".md"):
            yield target


def iter_links(path: str) -> Iterator[Tuple[int, str]]:
    """Yield (line_number, url) for every inline link outside code fences."""
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            if _CODE_FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK.finditer(line):
                yield line_no, match.group(1)


def heading_slugs(path: str) -> set:
    slugs = set()
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if _CODE_FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = _HEADING.match(line)
            if match:
                slugs.add(github_slug(match.group(1)))
    return slugs


def check_file(path: str) -> List[str]:
    errors = []
    base = os.path.dirname(path)
    for line_no, url in iter_links(path):
        if url.startswith(("http://", "https://", "mailto:")):
            continue
        where = f"{path}:{line_no}"
        if url.startswith("/"):
            errors.append(f"{where}: absolute link {url!r} is unportable")
            continue
        target, _, anchor = url.partition("#")
        if target:
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                errors.append(f"{where}: broken link {url!r} "
                              f"({resolved} does not exist)")
                continue
        else:
            resolved = path  # pure in-page anchor
        if anchor and resolved.endswith(".md"):
            if anchor not in heading_slugs(resolved):
                errors.append(f"{where}: anchor #{anchor} not found "
                              f"in {resolved}")
    return errors


def python_files(target: str) -> Iterator[str]:
    if os.path.isdir(target):
        for root, __, names in os.walk(target):
            for name in sorted(names):
                if name.endswith(".py"):
                    yield os.path.join(root, name)
    elif target.endswith(".py"):
        yield target


def check_docstrings(target: str) -> List[str]:
    """Missing module / public-class docstrings under ``target``.

    Only modules and public classes are enforced (methods and
    functions stay a matter of judgement); a public class is any whose
    name does not start with ``_``.
    """
    errors = []
    for path in python_files(target):
        with open(path, encoding="utf-8") as handle:
            try:
                module = ast.parse(handle.read(), filename=path)
            except SyntaxError as exc:
                errors.append(f"{path}: unparseable ({exc})")
                continue
        if ast.get_docstring(module) is None:
            errors.append(f"{path}:1: module has no docstring")
        for node in ast.walk(module):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name.startswith("_"):
                continue
            if ast.get_docstring(node) is None:
                errors.append(f"{path}:{node.lineno}: public class "
                              f"{node.name!r} has no docstring")
    return errors


#: Flags the docs/API.md capability table documents, in column order.
_CAPABILITY_FLAGS = ("supports_range", "supports_colors")
#: Cell spellings accepted as True / False in the capability table.
_TRUE_CELLS = frozenset({"✓", "✔", "yes", "true"})
_FALSE_CELLS = frozenset({"—", "–", "-", "no", "false", ""})


def registry_capabilities(api_path: str) -> dict:
    """``name -> {flag: bool}`` from the ``AlgorithmSpec(...)`` literals.

    Parses the source with :mod:`ast` instead of importing it, so the
    docs job needs neither an installed package nor numpy.  Only
    constant keyword values are considered, which every registry entry
    satisfies by construction (name and flags are literals).
    """
    with open(api_path, encoding="utf-8") as handle:
        module = ast.parse(handle.read(), filename=api_path)
    capabilities = {}
    for node in ast.walk(module):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "AlgorithmSpec"):
            continue
        fields = {
            keyword.arg: keyword.value.value
            for keyword in node.keywords
            if keyword.arg and isinstance(keyword.value, ast.Constant)
        }
        name = fields.get("name")
        if isinstance(name, str):
            capabilities[name] = {
                flag: bool(fields.get(flag, False))
                for flag in _CAPABILITY_FLAGS
            }
    return capabilities


def _parse_flag_cell(cell: str):
    cell = cell.strip().strip("`").lower()
    if cell in _TRUE_CELLS:
        return True
    if cell in _FALSE_CELLS:
        return False
    return None


def doc_capability_table(doc_path: str) -> dict:
    """``name -> ({flag: bool}, line_no)`` from the markdown table.

    The table is recognised by a header row naming every flag of
    ``_CAPABILITY_FLAGS``; rows end at the first non-table line.
    """
    rows = {}
    columns = None
    with open(doc_path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped.startswith("|"):
                if columns is not None and rows:
                    break
                columns = None
                continue
            cells = [c.strip() for c in stripped.strip("|").split("|")]
            if columns is None:
                header = [c.strip().strip("`").lower() for c in cells]
                if all(flag in header for flag in _CAPABILITY_FLAGS):
                    columns = {
                        flag: header.index(flag)
                        for flag in _CAPABILITY_FLAGS
                    }
                continue
            if set(cells[0]) <= {"-", ":"}:
                continue  # the |---|:-:| separator row
            name = cells[0].strip("`")
            flags = {}
            for flag, index in columns.items():
                value = (_parse_flag_cell(cells[index])
                         if index < len(cells) else None)
                flags[flag] = value
            rows[name] = (flags, line_no)
    return rows


def check_capability_table(doc_path: str, api_path: str) -> List[str]:
    """Mismatches between the doc table and the registry literals."""
    registry = registry_capabilities(api_path)
    if not registry:
        return [f"{api_path}: no AlgorithmSpec literals found "
                f"(capability check cannot run)"]
    table = doc_capability_table(doc_path)
    if not table:
        return [f"{doc_path}: no capability table found (expected a "
                f"header row naming {' and '.join(_CAPABILITY_FLAGS)})"]
    errors = []
    for name in registry:
        if name not in table:
            errors.append(f"{doc_path}: capability table misses "
                          f"registered algorithm {name!r}")
    for name, (flags, line_no) in table.items():
        where = f"{doc_path}:{line_no}"
        if name not in registry:
            errors.append(f"{where}: capability table row {name!r} "
                          f"names no registered algorithm")
            continue
        for flag, value in flags.items():
            if value is None:
                errors.append(f"{where}: unreadable {flag} cell "
                              f"for {name!r}")
            elif value != registry[name][flag]:
                errors.append(
                    f"{where}: {name!r} documents {flag}={value} "
                    f"but the registry says {registry[name][flag]}"
                )
    return errors


def cpql_keywords(cpql_path: str) -> Tuple[str, ...]:
    """The ``KEYWORDS`` tuple literal of ``repro/query/cpql.py``.

    Parsed with :mod:`ast` like the capability registry, so the docs
    job stays import-free.  Returns ``()`` when no literal is found.
    """
    with open(cpql_path, encoding="utf-8") as handle:
        module = ast.parse(handle.read(), filename=cpql_path)
    for node in module.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == "KEYWORDS"
                   for t in targets):
            continue
        value = node.value
        if isinstance(value, (ast.Tuple, ast.List)):
            words = []
            for element in value.elts:
                if not (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    return ()
                words.append(element.value)
            return tuple(words)
    return ()


def doc_keyword_table(doc_path: str) -> List[Tuple[str, int]]:
    """``(keyword, line_no)`` rows of the CPQL keyword table.

    The table is recognised by a header row whose first column is
    ``keyword``; rows end at the first non-table line.
    """
    rows: List[Tuple[str, int]] = []
    in_table = False
    with open(doc_path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped.startswith("|"):
                if in_table and rows:
                    break
                in_table = False
                continue
            cells = [c.strip() for c in stripped.strip("|").split("|")]
            first = cells[0].strip("`").lower()
            if not in_table:
                if first == "keyword":
                    in_table = True
                continue
            if set(cells[0]) <= {"-", ":"}:
                continue  # the |---|---| separator row
            rows.append((cells[0].strip("`"), line_no))
    return rows


def check_keyword_table(doc_path: str, cpql_path: str) -> List[str]:
    """Mismatches between the doc's keyword table and the tokenizer."""
    keywords = cpql_keywords(cpql_path)
    if not keywords:
        return [f"{cpql_path}: no KEYWORDS tuple literal found "
                f"(keyword check cannot run)"]
    table = doc_keyword_table(doc_path)
    if not table:
        return [f"{doc_path}: no CPQL keyword table found (expected a "
                f"header row whose first column is 'keyword')"]
    errors = []
    documented = [word for word, __ in table]
    for word in keywords:
        if word not in documented:
            errors.append(f"{doc_path}: keyword table misses reserved "
                          f"keyword {word!r}")
    for word, line_no in table:
        if word not in keywords:
            errors.append(f"{doc_path}:{line_no}: keyword table row "
                          f"{word!r} names no reserved keyword")
    if not errors and documented != list(keywords):
        errors.append(f"{doc_path}: keyword table order differs from "
                      f"the KEYWORDS tuple (keep it alphabetical)")
    return errors


def main(argv: List[str]) -> int:
    targets: List[str] = []
    docstring_targets: List[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--docstrings":
            docstring_targets.append(next(it, ""))
        else:
            targets.append(arg)
    targets = targets or ["README.md", "docs"]
    checked = 0
    errors: List[str] = []
    api_doc = None
    catalog_doc = None
    for path in markdown_files(targets):
        checked += 1
        errors.extend(check_file(path))
        if os.path.basename(path) == "API.md":
            api_doc = path
        if os.path.basename(path) == "CATALOG.md":
            catalog_doc = path
    repo_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    if api_doc is not None:
        api_source = os.path.join(repo_root, "src", "repro", "core",
                                  "api.py")
        if os.path.exists(api_source):
            errors.extend(check_capability_table(api_doc, api_source))
    if catalog_doc is not None:
        cpql_source = os.path.join(repo_root, "src", "repro", "query",
                                   "cpql.py")
        if os.path.exists(cpql_source):
            errors.extend(check_keyword_table(catalog_doc, cpql_source))
    py_checked = 0
    for target in docstring_targets:
        if not target:
            print("check_docs: --docstrings needs a directory",
                  file=sys.stderr)
            return 2
        py_checked += sum(1 for __ in python_files(target))
        errors.extend(check_docstrings(target))
    if errors:
        print(f"check_docs: {len(errors)} problem(s) in {checked} "
              f"markdown / {py_checked} python file(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"check_docs: {checked} markdown file(s) and "
          f"{py_checked} python file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
