#!/usr/bin/env python3
"""Markdown link checker for the README and docs/.

Verifies every relative markdown link -- ``[text](path)``,
``[text](path#anchor)`` and bare reference-style definitions -- against
the working tree:

* the linked file must exist (relative to the linking document);
* a ``#anchor`` into a markdown file must match a heading of that file
  (GitHub's slugging rules: lowercase, spaces to dashes, punctuation
  dropped).

External links (``http(s)://``, ``mailto:``) are *not* fetched -- CI
must not depend on the network -- and absolute paths are rejected as
unportable.  Exits 1 listing every broken link, 0 when clean.

Usage::

    python tools/check_docs.py [FILE_OR_DIR ...]   # default: README.md docs/
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator, List, Tuple

#: Inline links, excluding images' leading ``!`` handled the same way.
_LINK = re.compile(r"\[(?:[^\]]*)\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's heading -> anchor slug transformation."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(targets: List[str]) -> Iterator[str]:
    for target in targets:
        if os.path.isdir(target):
            for root, __, names in os.walk(target):
                for name in sorted(names):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        elif target.endswith(".md"):
            yield target


def iter_links(path: str) -> Iterator[Tuple[int, str]]:
    """Yield (line_number, url) for every inline link outside code fences."""
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            if _CODE_FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK.finditer(line):
                yield line_no, match.group(1)


def heading_slugs(path: str) -> set:
    slugs = set()
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if _CODE_FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = _HEADING.match(line)
            if match:
                slugs.add(github_slug(match.group(1)))
    return slugs


def check_file(path: str) -> List[str]:
    errors = []
    base = os.path.dirname(path)
    for line_no, url in iter_links(path):
        if url.startswith(("http://", "https://", "mailto:")):
            continue
        where = f"{path}:{line_no}"
        if url.startswith("/"):
            errors.append(f"{where}: absolute link {url!r} is unportable")
            continue
        target, _, anchor = url.partition("#")
        if target:
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                errors.append(f"{where}: broken link {url!r} "
                              f"({resolved} does not exist)")
                continue
        else:
            resolved = path  # pure in-page anchor
        if anchor and resolved.endswith(".md"):
            if anchor not in heading_slugs(resolved):
                errors.append(f"{where}: anchor #{anchor} not found "
                              f"in {resolved}")
    return errors


def main(argv: List[str]) -> int:
    targets = argv or ["README.md", "docs"]
    checked = 0
    errors: List[str] = []
    for path in markdown_files(targets):
        checked += 1
        errors.extend(check_file(path))
    if errors:
        print(f"check_docs: {len(errors)} broken link(s) "
              f"in {checked} file(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"check_docs: {checked} markdown file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
